package prof

import (
	"bytes"
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"
)

// Profile is one captured profile held in the Profiler's ring.
type Profile struct {
	ID    int       `json:"id"`
	Kind  string    `json:"kind"` // "cpu" or "heap"
	Taken time.Time `json:"taken"`
	Size  int       `json:"size_bytes"`
	data  []byte
}

// Data returns the raw pprof-format bytes of the capture.
func (p Profile) Data() []byte { return p.data }

// ProfilerConfig bounds the continuous profiler. Zero values pick the
// documented defaults.
type ProfilerConfig struct {
	// Interval between capture rounds; each round records one heap
	// profile and one CPU profile. Default 1 minute.
	Interval time.Duration
	// CPUDuration is how long each CPU sample runs. It is clamped to
	// Interval/2 so rounds cannot overlap. Default 5 seconds.
	CPUDuration time.Duration
	// Keep is the ring size per profile kind — older captures are
	// dropped so memory stays bounded at roughly Keep×profile size
	// per kind. Default 4.
	Keep int
}

func (c ProfilerConfig) withDefaults() ProfilerConfig {
	if c.Interval <= 0 {
		c.Interval = time.Minute
	}
	if c.CPUDuration <= 0 {
		c.CPUDuration = 5 * time.Second
	}
	if c.CPUDuration > c.Interval/2 {
		c.CPUDuration = c.Interval / 2
	}
	if c.Keep <= 0 {
		c.Keep = 4
	}
	return c
}

// Profiler captures CPU and heap profiles on a timer into a bounded
// in-memory ring, for retrieval through the server's authenticated
// /debug/profilez endpoints. It is opt-in: a nil *Profiler is a valid
// disabled profiler (every method no-ops), so wiring costs nothing
// when the feature is off.
type Profiler struct {
	cfg ProfilerConfig

	mu     sync.Mutex
	nextID int
	ring   []Profile // oldest first, capped at 2×Keep (Keep per kind)
}

// NewProfiler returns an idle profiler; call Run to start the capture
// loop, or CaptureHeap/CaptureCPU for one-shot captures.
func NewProfiler(cfg ProfilerConfig) *Profiler {
	return &Profiler{cfg: cfg.withDefaults()}
}

// Run captures profiles every Interval until ctx is done. Blocks;
// callers run it in a goroutine. No-op on a nil receiver.
func (p *Profiler) Run(ctx context.Context) {
	if p == nil {
		return
	}
	tick := time.NewTicker(p.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			p.CaptureHeap()
			p.CaptureCPU(ctx)
		}
	}
}

// CaptureHeap records a heap profile into the ring and returns its ID.
// Returns -1 on a nil receiver or capture failure.
func (p *Profiler) CaptureHeap() int {
	if p == nil {
		return -1
	}
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		return -1
	}
	return p.add("heap", buf.Bytes())
}

// CaptureCPU records a CPUDuration-long CPU profile into the ring and
// returns its ID. Returns -1 on a nil receiver or when another CPU
// profile is already running (pprof allows only one at a time
// process-wide, e.g. a concurrent /debug/pprof/profile scrape).
func (p *Profiler) CaptureCPU(ctx context.Context) int {
	if p == nil {
		return -1
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return -1
	}
	select {
	case <-ctx.Done():
	case <-time.After(p.cfg.CPUDuration):
	}
	pprof.StopCPUProfile()
	return p.add("cpu", buf.Bytes())
}

func (p *Profiler) add(kind string, data []byte) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextID
	p.nextID++
	p.ring = append(p.ring, Profile{ID: id, Kind: kind, Taken: time.Now(), Size: len(data), data: data})
	// Evict oldest captures of this kind beyond Keep.
	kept := 0
	for i := len(p.ring) - 1; i >= 0; i-- {
		if p.ring[i].Kind != kind {
			continue
		}
		kept++
		if kept > p.cfg.Keep {
			p.ring = append(p.ring[:i], p.ring[i+1:]...)
		}
	}
	return id
}

// Profiles lists the retained captures, oldest first, without their
// payloads (Size still reports payload length). Nil-safe.
func (p *Profiler) Profiles() []Profile {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Profile, len(p.ring))
	for i, pr := range p.ring {
		pr.data = nil
		out[i] = pr
	}
	return out
}

// Get returns the capture with the given ID, payload included.
func (p *Profiler) Get(id int) (Profile, error) {
	if p == nil {
		return Profile{}, fmt.Errorf("profiler disabled")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pr := range p.ring {
		if pr.ID == id {
			return pr, nil
		}
	}
	return Profile{}, fmt.Errorf("profile %d not retained (ring keeps the last %d per kind)", id, p.cfg.Keep)
}
