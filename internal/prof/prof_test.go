package prof

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestGroupSumsParts(t *testing.T) {
	f := Group("root",
		Footprint{Name: "a", Bytes: 100, Items: 3},
		Group("b",
			Footprint{Name: "b1", Bytes: 40},
			Footprint{Name: "b2", Bytes: 2},
		),
	)
	if f.Bytes != 142 {
		t.Fatalf("root bytes = %d, want 142", f.Bytes)
	}
	assertSums(t, f)
	if b, ok := f.Find("b"); !ok || b.Bytes != 42 {
		t.Fatalf("Find(b) = %+v, %v", b, ok)
	}
	if _, ok := f.Find("missing"); ok {
		t.Fatal("Find(missing) succeeded")
	}
}

// assertSums checks the accounting invariant on every composite node:
// Bytes equals the sum of the parts' Bytes, recursively.
func assertSums(t *testing.T, f Footprint) {
	t.Helper()
	if len(f.Parts) == 0 {
		return
	}
	var sum int64
	for _, p := range f.Parts {
		sum += p.Bytes
		assertSums(t, p)
	}
	if f.Bytes != sum {
		t.Fatalf("%s: bytes %d != sum of parts %d", f.Name, f.Bytes, sum)
	}
}

func TestSliceAndStringBytes(t *testing.T) {
	if got := SliceBytes(10, 4); got != 64 {
		t.Fatalf("SliceBytes(10,4) = %d, want 64", got)
	}
	if got := SliceBytes(0, 16); got != 24 {
		t.Fatalf("SliceBytes(0,16) = %d, want 24 (header only)", got)
	}
	if got := StringBytes("abcd"); got != 20 {
		t.Fatalf("StringBytes(abcd) = %d, want 20", got)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:             "512 B",
		2048:            "2.0 KiB",
		3 << 20:         "3.0 MiB",
		5 << 30:         "5.0 GiB",
		1536:            "1.5 KiB",
		(3 << 20) + 512: "3.0 MiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestWriteText(t *testing.T) {
	f := Group("root", Footprint{Name: "part", Bytes: 2048, Items: 7})
	var sb strings.Builder
	f.WriteText(&sb)
	out := sb.String()
	if !strings.Contains(out, "root") || !strings.Contains(out, "part") {
		t.Fatalf("report missing names:\n%s", out)
	}
	if !strings.Contains(out, "(7 items)") {
		t.Fatalf("report missing item count:\n%s", out)
	}
	if !strings.Contains(out, "  part") {
		t.Fatalf("part not indented:\n%s", out)
	}
}

func TestStagesAccumulate(t *testing.T) {
	st := NewStages()
	st.Add("to_graph", 5*time.Millisecond)
	st.Add("to_graph", 7*time.Millisecond)
	st.Add("repair", 100*time.Microsecond)
	end := st.Timer("publish")
	end()
	got := st.SnapshotMS()
	if got["to_graph"] != 12 {
		t.Fatalf("to_graph = %v, want 12", got["to_graph"])
	}
	if got["repair"] != 0.1 {
		t.Fatalf("repair = %v, want 0.1", got["repair"])
	}
	if _, ok := got["publish"]; !ok {
		t.Fatal("publish stage missing")
	}
	names := SortedStageNames(got)
	if len(names) != 3 || names[0] != "publish" || names[2] != "to_graph" {
		t.Fatalf("sorted names = %v", names)
	}
}

func TestStagesConcurrent(t *testing.T) {
	st := NewStages()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				st.Add("s", time.Millisecond)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if got := st.SnapshotMS()["s"]; got != 4000 {
		t.Fatalf("s = %v, want 4000", got)
	}
}

func TestNilStagesSafe(t *testing.T) {
	var st *Stages
	st.Add("x", time.Second)
	st.Timer("y")()
	if m := st.SnapshotMS(); m != nil {
		t.Fatalf("nil snapshot = %v, want nil", m)
	}
}

// TestDisabledStagesZeroAlloc locks the zero-overhead-when-disabled
// guarantee for the accounting path, mirroring the obs trace gate:
// instrumented pipelines pass a nil *Stages when accounting is off and
// must not allocate for it.
func TestDisabledStagesZeroAlloc(t *testing.T) {
	var st *Stages
	allocs := testing.AllocsPerRun(1000, func() {
		end := st.Timer("stage")
		st.Add("stage", time.Millisecond)
		_ = st.SnapshotMS()
		end()
	})
	if allocs != 0 {
		t.Fatalf("disabled stages allocated %v per run, want 0", allocs)
	}
}

func TestProfilerHeapRing(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Keep: 2})
	var ids []int
	for i := 0; i < 3; i++ {
		id := p.CaptureHeap()
		if id < 0 {
			t.Fatalf("capture %d failed", i)
		}
		ids = append(ids, id)
	}
	list := p.Profiles()
	if len(list) != 2 {
		t.Fatalf("ring holds %d, want 2", len(list))
	}
	if list[0].ID != ids[1] || list[1].ID != ids[2] {
		t.Fatalf("ring = %+v, want ids %v", list, ids[1:])
	}
	for _, pr := range list {
		if pr.Kind != "heap" || pr.Size <= 0 {
			t.Fatalf("bad profile meta: %+v", pr)
		}
		if pr.Data() != nil {
			t.Fatal("Profiles() must not carry payloads")
		}
	}
	got, err := p.Get(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data()) == 0 || len(got.Data()) != got.Size {
		t.Fatalf("payload size %d, meta %d", len(got.Data()), got.Size)
	}
	if _, err := p.Get(ids[0]); err == nil {
		t.Fatal("evicted profile still retrievable")
	}
}

func TestProfilerCPUCapture(t *testing.T) {
	p := NewProfiler(ProfilerConfig{CPUDuration: 20 * time.Millisecond, Interval: time.Hour})
	id := p.CaptureCPU(context.Background())
	if id < 0 {
		t.Fatal("cpu capture failed")
	}
	pr, err := p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Kind != "cpu" || pr.Size == 0 {
		t.Fatalf("bad cpu profile: %+v", pr)
	}
}

func TestNilProfilerSafe(t *testing.T) {
	var p *Profiler
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Run(ctx)
	if p.CaptureHeap() != -1 || p.CaptureCPU(ctx) != -1 {
		t.Fatal("nil captures should report failure")
	}
	if p.Profiles() != nil {
		t.Fatal("nil Profiles should be nil")
	}
	if _, err := p.Get(0); err == nil {
		t.Fatal("nil Get should error")
	}
}

func TestProfilerRunLoop(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Interval: 30 * time.Millisecond, CPUDuration: 5 * time.Millisecond, Keep: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	p.Run(ctx)
	list := p.Profiles()
	var heaps, cpus int
	for _, pr := range list {
		switch pr.Kind {
		case "heap":
			heaps++
		case "cpu":
			cpus++
		}
	}
	if heaps == 0 || cpus == 0 {
		t.Fatalf("run loop captured heap=%d cpu=%d, want both > 0", heaps, cpus)
	}
}
