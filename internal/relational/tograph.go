package relational

import (
	"fmt"

	"commdb/internal/fulltext"
	"commdb/internal/graph"
)

// NodeRef identifies the tuple behind a graph node.
type NodeRef struct {
	Table string
	PK    string
}

// NodeMap translates between graph nodes and database tuples.
type NodeMap struct {
	refs  []NodeRef
	byRef map[NodeRef]graph.NodeID
}

// Ref returns the tuple reference of a node.
func (m *NodeMap) Ref(v graph.NodeID) NodeRef { return m.refs[v] }

// Node resolves a (table, primary key) pair to its node.
func (m *NodeMap) Node(table, pk string) (graph.NodeID, bool) {
	v, ok := m.byRef[NodeRef{Table: table, PK: pk}]
	return v, ok
}

// Len reports the number of mapped nodes.
func (m *NodeMap) Len() int { return len(m.refs) }

// ToGraph materializes the database as the paper's database graph G_D:
// one node per tuple carrying the tokens of its full-text attributes,
// and one bi-directed edge per foreign-key reference between the
// referencing and the referenced tuples. Edge weights follow the
// experiments' function w_e((u,v)) = log2(1 + N_in(v)).
//
// The node label is "Table:PK". CheckIntegrity is run first so a
// dangling reference fails loudly rather than silently dropping edges.
func (db *Database) ToGraph() (*graph.Graph, *NodeMap, error) {
	if err := db.CheckIntegrity(); err != nil {
		return nil, nil, err
	}
	b := graph.NewBuilder()
	m := &NodeMap{byRef: make(map[NodeRef]graph.NodeID, db.NumTuples())}

	// Nodes, table by table in creation order for determinism.
	for _, name := range db.order {
		t := db.tables[name]
		var textCols []int
		for i, c := range t.schema.Columns {
			if c.FullText && c.Type == String {
				textCols = append(textCols, i)
			}
		}
		for r := 0; r < t.Len(); r++ {
			row := t.Row(r)
			pk := t.pkKey(row)
			var terms []string
			for _, ci := range textCols {
				terms = append(terms, fulltext.Tokenize(row[ci].Str())...)
			}
			id := b.AddNode(fmt.Sprintf("%s:%s", name, pk), terms...)
			ref := NodeRef{Table: name, PK: pk}
			m.refs = append(m.refs, ref)
			m.byRef[ref] = id
		}
	}

	// Edges: one bi-directed pair per foreign-key instance.
	for _, fk := range db.fks {
		from := db.tables[fk.FromTable]
		ci := from.ColumnIndex(fk.FromColumn)
		for r := 0; r < from.Len(); r++ {
			row := from.Row(r)
			u := m.byRef[NodeRef{Table: fk.FromTable, PK: from.pkKey(row)}]
			v := m.byRef[NodeRef{Table: fk.ToTable, PK: row[ci].String()}]
			b.AddBiEdge(u, v, 0) // weights assigned by FreezeLogWeights
		}
	}

	g, err := b.FreezeLogWeights()
	if err != nil {
		return nil, nil, err
	}
	return g, m, nil
}
