package relational

import (
	"fmt"

	"commdb/internal/fulltext"
	"commdb/internal/graph"
)

// NodeRef identifies the tuple behind a graph node.
type NodeRef struct {
	Table string
	PK    string
}

// NodeMap translates between graph nodes and database tuples.
type NodeMap struct {
	refs  []NodeRef
	byRef map[NodeRef]graph.NodeID
}

// Ref returns the tuple reference of a node.
func (m *NodeMap) Ref(v graph.NodeID) NodeRef { return m.refs[v] }

// Node resolves a (table, primary key) pair to its node.
func (m *NodeMap) Node(table, pk string) (graph.NodeID, bool) {
	v, ok := m.byRef[NodeRef{Table: table, PK: pk}]
	return v, ok
}

// Len reports the number of mapped nodes.
func (m *NodeMap) Len() int { return len(m.refs) }

// ToGraph materializes the database as the paper's database graph G_D:
// one node per tuple carrying the tokens of its full-text attributes,
// and one bi-directed edge per foreign-key reference between the
// referencing and the referenced tuples. Edge weights follow the
// experiments' function w_e((u,v)) = log2(1 + N_in(v)).
//
// The node label is "Table:PK". A dangling foreign-key reference fails
// loudly (with CheckIntegrity's error) rather than silently dropping
// edges.
//
// This routine is the fixed per-batch cost of the incremental
// maintainer (internal/delta re-materializes the graph on every apply),
// so it avoids per-row key serialization: node IDs are dense in table
// order, letting both loops address nodes as tableBase+rowIndex, and
// the primary-key strings are recovered by inverting each table's
// pkIndex once instead of re-joining key columns per row.
func (db *Database) ToGraph() (*graph.Graph, *NodeMap, error) {
	b := graph.NewBuilder()
	// Node and edge counts are known exactly up front (one node per
	// tuple, two directed edges per foreign-key instance), so the
	// builder never regrows an append.
	numEdges := 0
	for _, fk := range db.fks {
		numEdges += 2 * db.tables[fk.FromTable].Len()
	}
	b.Grow(db.NumTuples(), numEdges)
	m := &NodeMap{
		refs:  make([]NodeRef, 0, db.NumTuples()),
		byRef: make(map[NodeRef]graph.NodeID, db.NumTuples()),
	}

	// Nodes, table by table in creation order for determinism.
	base := make(map[string]graph.NodeID, len(db.order))
	for _, name := range db.order {
		t := db.tables[name]
		base[name] = graph.NodeID(len(m.refs))
		var textCols []int
		for i, c := range t.schema.Columns {
			if c.FullText && c.Type == String {
				textCols = append(textCols, i)
			}
		}
		// pkIndex already holds every row's serialized key; one inverting
		// pass (virtual → actual via rowPos) is far cheaper than
		// len(rows) pkKey serializations.
		keys := make([]string, t.Len())
		for k, ri := range t.pkIndex {
			keys[t.rowPos(ri)] = k
		}
		var terms []string // reused; AddNode keeps only the interned IDs
		for r := 0; r < t.Len(); r++ {
			row := t.Row(r)
			pk := keys[r]
			terms = terms[:0]
			for _, ci := range textCols {
				terms = append(terms, fulltext.Tokenize(row[ci].Str())...)
			}
			id := b.AddNode(name+":"+pk, terms...)
			ref := NodeRef{Table: name, PK: pk}
			m.refs = append(m.refs, ref)
			m.byRef[ref] = id
		}
	}

	// Edges: one bi-directed pair per foreign-key instance. The
	// referencing side is addressed positionally; the referenced side
	// through the target table's primary-key index, which doubles as the
	// integrity check.
	for _, fk := range db.fks {
		from := db.tables[fk.FromTable]
		to := db.tables[fk.ToTable]
		fromBase, toBase := base[fk.FromTable], base[fk.ToTable]
		ci := from.ColumnIndex(fk.FromColumn)
		for r := 0; r < from.Len(); r++ {
			val := from.Row(r)[ci].String()
			vi, ok := to.pkIndex[val]
			if !ok {
				return nil, nil, fmt.Errorf("relational: %s row %d: %s=%s has no match in %s",
					fk.FromTable, r, fk.FromColumn, val, fk.ToTable)
			}
			u := fromBase + graph.NodeID(r)
			v := toBase + graph.NodeID(to.rowPos(vi))
			b.AddBiEdge(u, v, 0) // weights assigned by FreezeLogWeights
		}
	}

	g, err := b.FreezeLogWeights()
	if err != nil {
		return nil, nil, err
	}
	return g, m, nil
}
