package relational

import (
	"math"
	"strings"
	"testing"
)

// miniDBLP builds a 2-author, 2-paper bibliographic database mirroring
// the paper's introduction example.
func miniDBLP(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	author, err := db.CreateTable(Schema{
		Name: "Author",
		Columns: []Column{
			{Name: "Aid", Type: Int},
			{Name: "Name", Type: String, FullText: true},
		},
		PrimaryKey: []string{"Aid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	paper, err := db.CreateTable(Schema{
		Name: "Paper",
		Columns: []Column{
			{Name: "Pid", Type: Int},
			{Name: "Title", Type: String, FullText: true},
		},
		PrimaryKey: []string{"Pid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	write, err := db.CreateTable(Schema{
		Name: "Write",
		Columns: []Column{
			{Name: "Aid", Type: Int},
			{Name: "Pid", Type: Int},
		},
		PrimaryKey: []string{"Aid", "Pid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cite, err := db.CreateTable(Schema{
		Name: "Cite",
		Columns: []Column{
			{Name: "Pid1", Type: Int},
			{Name: "Pid2", Type: Int},
		},
		PrimaryKey: []string{"Pid1", "Pid2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, fk := range []ForeignKey{
		{FromTable: "Write", FromColumn: "Aid", ToTable: "Author"},
		{FromTable: "Write", FromColumn: "Pid", ToTable: "Paper"},
		{FromTable: "Cite", FromColumn: "Pid1", ToTable: "Paper"},
		{FromTable: "Cite", FromColumn: "Pid2", ToTable: "Paper"},
	} {
		if err := db.AddForeignKey(fk); err != nil {
			t.Fatal(err)
		}
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(author.Insert(IntV(1), StrV("John Smith")))
	must(author.Insert(IntV(2), StrV("Kate Green")))
	must(paper.Insert(IntV(10), StrV("keyword search in databases")))
	must(paper.Insert(IntV(11), StrV("community queries")))
	must(write.Insert(IntV(1), IntV(10)))
	must(write.Insert(IntV(2), IntV(10)))
	must(write.Insert(IntV(2), IntV(11)))
	must(cite.Insert(IntV(10), IntV(11)))
	return db
}

func TestCreateTableErrors(t *testing.T) {
	db := NewDatabase()
	if _, err := db.CreateTable(Schema{}); err == nil {
		t.Fatal("unnamed table should fail")
	}
	if _, err := db.CreateTable(Schema{Name: "T"}); err == nil {
		t.Fatal("no columns should fail")
	}
	if _, err := db.CreateTable(Schema{Name: "T", Columns: []Column{{Name: "a", Type: Int}}}); err == nil {
		t.Fatal("no primary key should fail")
	}
	if _, err := db.CreateTable(Schema{
		Name:       "T",
		Columns:    []Column{{Name: "a", Type: Int}, {Name: "a", Type: Int}},
		PrimaryKey: []string{"a"},
	}); err == nil {
		t.Fatal("duplicate column should fail")
	}
	if _, err := db.CreateTable(Schema{
		Name:       "T",
		Columns:    []Column{{Name: "a", Type: Int}},
		PrimaryKey: []string{"zzz"},
	}); err == nil {
		t.Fatal("missing pk column should fail")
	}
	if _, err := db.CreateTable(Schema{
		Name:       "Dup",
		Columns:    []Column{{Name: "a", Type: Int}},
		PrimaryKey: []string{"a"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(Schema{
		Name:       "Dup",
		Columns:    []Column{{Name: "a", Type: Int}},
		PrimaryKey: []string{"a"},
	}); err == nil {
		t.Fatal("duplicate table should fail")
	}
}

func TestInsertValidation(t *testing.T) {
	db := NewDatabase()
	tab, err := db.CreateTable(Schema{
		Name:       "T",
		Columns:    []Column{{Name: "id", Type: Int}, {Name: "name", Type: String}},
		PrimaryKey: []string{"id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(IntV(1)); err == nil {
		t.Fatal("wrong arity should fail")
	}
	if err := tab.Insert(StrV("x"), StrV("y")); err == nil {
		t.Fatal("wrong type should fail")
	}
	if err := tab.Insert(IntV(1), StrV("x")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(IntV(1), StrV("other")); err == nil {
		t.Fatal("duplicate primary key should fail")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
	row, ok := tab.Lookup("1")
	if !ok || row[1].Str() != "x" {
		t.Fatalf("Lookup = %v,%v", row, ok)
	}
	if _, ok := tab.Lookup("99"); ok {
		t.Fatal("Lookup of missing key should fail")
	}
	if tab.ColumnIndex("name") != 1 || tab.ColumnIndex("zzz") != -1 {
		t.Fatal("ColumnIndex")
	}
}

func TestForeignKeyValidation(t *testing.T) {
	db := miniDBLP(t)
	if err := db.AddForeignKey(ForeignKey{FromTable: "Nope", FromColumn: "x", ToTable: "Author"}); err == nil {
		t.Fatal("unknown from-table should fail")
	}
	if err := db.AddForeignKey(ForeignKey{FromTable: "Write", FromColumn: "Nope", ToTable: "Author"}); err == nil {
		t.Fatal("unknown from-column should fail")
	}
	if err := db.AddForeignKey(ForeignKey{FromTable: "Write", FromColumn: "Aid", ToTable: "Nope"}); err == nil {
		t.Fatal("unknown to-table should fail")
	}
	if err := db.AddForeignKey(ForeignKey{FromTable: "Author", FromColumn: "Aid", ToTable: "Write"}); err == nil {
		t.Fatal("composite-key target should fail")
	}
}

func TestCheckIntegrity(t *testing.T) {
	db := miniDBLP(t)
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	write, _ := db.Table("Write")
	if err := write.Insert(IntV(99), IntV(10)); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIntegrity(); err == nil {
		t.Fatal("dangling author reference should fail integrity")
	}
}

func TestNumTuples(t *testing.T) {
	db := miniDBLP(t)
	if got := db.NumTuples(); got != 8 {
		t.Fatalf("NumTuples = %d, want 8", got)
	}
	if len(db.Tables()) != 4 {
		t.Fatalf("Tables = %v", db.Tables())
	}
	if len(db.ForeignKeys()) != 4 {
		t.Fatal("ForeignKeys")
	}
}

func TestToGraph(t *testing.T) {
	db := miniDBLP(t)
	g, m, err := db.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 8 {
		t.Fatalf("nodes = %d, want 8 (one per tuple)", g.NumNodes())
	}
	// Each Write row references Author and Paper (2 FKs × 3 rows) and
	// the Cite row references Paper twice: 8 references, bi-directed
	// => 16 directed edges.
	if g.NumEdges() != 16 {
		t.Fatalf("edges = %d, want 16", g.NumEdges())
	}
	// Node mapping round-trips.
	kate, ok := m.Node("Author", "2")
	if !ok {
		t.Fatal("Kate's node missing")
	}
	if ref := m.Ref(kate); ref.Table != "Author" || ref.PK != "2" {
		t.Fatalf("Ref = %+v", ref)
	}
	if m.Len() != 8 {
		t.Fatalf("NodeMap.Len = %d", m.Len())
	}
	// Full-text terms: Kate's node contains "kate" and "green".
	id, ok := g.Dict().ID("kate")
	if !ok || !g.HasTerm(kate, id) {
		t.Fatal("kate term missing from node")
	}
	// Labels are Table:PK.
	if !strings.HasPrefix(g.Label(kate), "Author:") {
		t.Fatalf("label = %s", g.Label(kate))
	}
	// Write tuples carry no terms (no full-text columns).
	w00, ok := m.Node("Write", "1|10")
	if !ok {
		t.Fatal("write tuple node missing")
	}
	if len(g.Terms(w00)) != 0 {
		t.Fatalf("write tuple has terms %v", g.Terms(w00))
	}
	// Edge weights follow log2(1 + indeg).
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.OutEdges(int32(v)) {
			want := math.Log2(1 + float64(g.InDegree(e.To)))
			if math.Abs(e.Weight-want) > 1e-12 {
				t.Fatalf("edge (%d,%d) weight %v, want %v", v, e.To, e.Weight, want)
			}
		}
	}
	// Kate connects to her two Write tuples (bi-directed).
	if g.OutDegree(kate) != 2 || g.InDegree(kate) != 2 {
		t.Fatalf("deg(kate) = %d/%d, want 2/2", g.OutDegree(kate), g.InDegree(kate))
	}
}

func TestToGraphFailsOnBrokenIntegrity(t *testing.T) {
	db := miniDBLP(t)
	write, _ := db.Table("Write")
	if err := write.Insert(IntV(50), IntV(10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ToGraph(); err == nil {
		t.Fatal("ToGraph should fail on dangling references")
	}
}

func TestValueRendering(t *testing.T) {
	if IntV(42).String() != "42" {
		t.Fatal("int value rendering")
	}
	if StrV("abc").String() != "abc" {
		t.Fatal("string value rendering")
	}
	if IntV(7).Int() != 7 || StrV("x").Str() != "x" {
		t.Fatal("payload accessors")
	}
}

// TestCompositeKeyLookup: composite keys serialize with a separator.
func TestCompositeKeyLookup(t *testing.T) {
	db := miniDBLP(t)
	write, _ := db.Table("Write")
	if _, ok := write.Lookup("2|11"); !ok {
		t.Fatal("composite key lookup failed")
	}
	if _, ok := write.Lookup("2|99"); ok {
		t.Fatal("missing composite key should fail")
	}
}
