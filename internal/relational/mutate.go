package relational

import (
	"fmt"
	"sort"
)

// Mutation support: ordered tuple insert/delete against a live database
// with O(1) referential-integrity enforcement and change capture, the
// substrate internal/delta's incremental maintainer builds on.
//
// The invariant everything downstream depends on is *order stability*:
// rows live in insertion order, deletes remove in place without
// reordering survivors, and tables keep their creation order. ToGraph
// assigns node IDs by walking (table creation order × row order), so
// between two materializations the surviving tuples keep their relative
// order — the old→new node-ID map is strictly monotone, which is what
// lets internal/index remap untouched posting lists instead of
// recomputing them.

// ChangeOp distinguishes captured mutations.
type ChangeOp int

const (
	// ChangeInsert records a newly inserted tuple.
	ChangeInsert ChangeOp = iota
	// ChangeDelete records a deleted tuple.
	ChangeDelete
)

// String names the op for logs and metrics.
func (op ChangeOp) String() string {
	if op == ChangeInsert {
		return "insert"
	}
	return "delete"
}

// Change is one captured mutation: the tuple that changed and the
// tuples its foreign keys reference. Targets are captured at mutation
// time because a deleted row can no longer be consulted afterwards.
// Together {Ref} ∪ Targets cover every graph node whose incident edge
// set or edge weights the mutation can touch: the tuple's own node
// (edges appear/disappear with it) and each referenced node (whose
// in-degree — and therefore the log2(1+N_in) weight of every edge
// pointing at it — shifts).
type Change struct {
	Op      ChangeOp
	Ref     NodeRef
	Targets []NodeRef
}

// delete removes the row with the given serialized primary key,
// preserving the order of the remaining rows. Only the victim's own
// pkIndex entry is touched: surviving entries keep their virtual
// positions, and the vacated position joins deadPos so rowPos can keep
// translating (see the Table doc). The row-slice shift remains, but
// that is one memmove, not O(table) map writes — the cost that used to
// dominate delete-heavy incremental-maintenance batches.
func (t *Table) delete(pk string) error {
	v, ok := t.pkIndex[pk]
	if !ok {
		return fmt.Errorf("relational: delete %s: no row with key %s", t.schema.Name, pk)
	}
	i := t.rowPos(v)
	t.rows = append(t.rows[:i], t.rows[i+1:]...)
	delete(t.pkIndex, pk)
	// Keep deadPos sorted; deletes land at arbitrary positions but the
	// list never exceeds compactEvery entries, so an insertion shift is
	// at most a few KB of memmove.
	at := sort.SearchInts(t.deadPos, v)
	t.deadPos = append(t.deadPos, 0)
	copy(t.deadPos[at+1:], t.deadPos[at:])
	t.deadPos[at] = v
	if len(t.deadPos) >= compactEvery {
		t.compact()
	}
	return nil
}

// EnableMutations switches the database into mutable mode: it verifies
// referential integrity once, builds per-foreign-key reference counts,
// and from then on Insert/Delete maintain those counts incrementally so
// every mutation's integrity check is O(foreign keys), not O(rows).
// Direct Table.Insert is rejected while mutable — it would bypass both
// the counts and change capture. Calling it twice is a no-op.
func (db *Database) EnableMutations() error {
	if db.mutable {
		return nil
	}
	if err := db.CheckIntegrity(); err != nil {
		return fmt.Errorf("relational: cannot enable mutations: %w", err)
	}
	db.refCounts = make([]map[string]int, len(db.fks))
	for i, fk := range db.fks {
		db.refCounts[i] = countRefs(db.tables[fk.FromTable], fk)
	}
	db.mutable = true
	return nil
}

// Mutable reports whether EnableMutations has run.
func (db *Database) Mutable() bool { return db.mutable }

// countRefs scans one referencing table into a referenced-key → count
// map.
func countRefs(from *Table, fk ForeignKey) map[string]int {
	ci := from.ColumnIndex(fk.FromColumn)
	m := make(map[string]int, from.Len())
	for r := 0; r < from.Len(); r++ {
		m[from.Row(r)[ci].String()]++
	}
	return m
}

// Insert adds a row through the mutation path: every foreign-key value
// must resolve to an existing referenced row (fail-closed — a stream
// must insert parents before children), reference counts are bumped,
// and the change is captured with its target refs.
func (db *Database) Insert(table string, vals ...Value) error {
	if !db.mutable {
		return fmt.Errorf("relational: Insert before EnableMutations")
	}
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("relational: insert into unknown table %s", table)
	}
	if len(vals) != len(t.schema.Columns) {
		return fmt.Errorf("relational: %s expects %d values, got %d",
			table, len(t.schema.Columns), len(vals))
	}
	var targets []NodeRef
	for _, fk := range db.fks {
		if fk.FromTable != table {
			continue
		}
		ref := vals[t.ColumnIndex(fk.FromColumn)].String()
		if _, ok := db.tables[fk.ToTable].Lookup(ref); !ok {
			return fmt.Errorf("relational: insert %s: %s=%s has no match in %s",
				table, fk.FromColumn, ref, fk.ToTable)
		}
		targets = append(targets, NodeRef{Table: fk.ToTable, PK: ref})
	}
	if err := t.insert(vals); err != nil {
		return err
	}
	for i, fk := range db.fks {
		if fk.FromTable == table {
			db.refCounts[i][vals[t.ColumnIndex(fk.FromColumn)].String()]++
		}
	}
	db.changes = append(db.changes, Change{
		Op:      ChangeInsert,
		Ref:     NodeRef{Table: table, PK: t.pkKey(t.rows[len(t.rows)-1])},
		Targets: targets,
	})
	return nil
}

// Delete removes a row through the mutation path. A row that is still
// referenced by a foreign key cannot be deleted (fail-closed, checked
// in O(1) per constraint against the reference counts); a stream must
// delete children before parents. The change is captured with the
// row's own target refs so the maintainer can seed its dirty set.
func (db *Database) Delete(table, pk string) error {
	if !db.mutable {
		return fmt.Errorf("relational: Delete before EnableMutations")
	}
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("relational: delete from unknown table %s", table)
	}
	row, ok := t.Lookup(pk)
	if !ok {
		return fmt.Errorf("relational: delete %s: no row with key %s", table, pk)
	}
	for i, fk := range db.fks {
		if fk.ToTable == table && db.refCounts[i][pk] > 0 {
			return fmt.Errorf("relational: delete %s key %s: still referenced by %d %s row(s)",
				table, pk, db.refCounts[i][pk], fk.FromTable)
		}
	}
	var targets []NodeRef
	for i, fk := range db.fks {
		if fk.FromTable != table {
			continue
		}
		ref := row[t.ColumnIndex(fk.FromColumn)].String()
		targets = append(targets, NodeRef{Table: fk.ToTable, PK: ref})
		if db.refCounts[i][ref]--; db.refCounts[i][ref] == 0 {
			delete(db.refCounts[i], ref)
		}
	}
	if err := t.delete(pk); err != nil {
		return err
	}
	db.changes = append(db.changes, Change{
		Op:      ChangeDelete,
		Ref:     NodeRef{Table: table, PK: pk},
		Targets: targets,
	})
	return nil
}

// Changes returns the mutations captured since the last ResetChanges,
// in application order.
func (db *Database) Changes() []Change { return db.changes }

// ResetChanges clears the capture buffer, typically after a maintainer
// has consumed a batch.
func (db *Database) ResetChanges() { db.changes = nil }
