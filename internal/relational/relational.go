// Package relational is the miniature relational substrate beneath the
// community search system: typed tables with primary and foreign keys,
// insertion with constraint checking, referential-integrity validation,
// and the materialization of a database into the paper's database graph
// G_D (tuples become nodes, foreign-key references become bi-directed
// edges weighted by w_e((u,v)) = log2(1 + N_in(v))).
package relational

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ColumnType enumerates the supported column types.
type ColumnType int

const (
	// Int is a 64-bit integer column.
	Int ColumnType = iota
	// String is a text column.
	String
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type ColumnType
	// FullText marks text attributes whose tokens become the keyword
	// terms of the tuple's graph node (e.g. Paper.Title, Author.Name).
	FullText bool
}

// Schema describes a table: its columns and primary key.
type Schema struct {
	Name    string
	Columns []Column
	// PrimaryKey lists the key column names, in order. Composite keys
	// are allowed (e.g. Write(Aid, Pid)).
	PrimaryKey []string
}

// Value is one typed attribute value.
type Value struct {
	kind ColumnType
	i    int64
	s    string
}

// IntV builds an integer value.
func IntV(v int64) Value { return Value{kind: Int, i: v} }

// StrV builds a string value.
func StrV(v string) Value { return Value{kind: String, s: v} }

// Kind reports the value's column type.
func (v Value) Kind() ColumnType { return v.kind }

// Int returns the integer payload.
func (v Value) Int() int64 { return v.i }

// Str returns the string payload.
func (v Value) Str() string { return v.s }

// String renders the value for labels and key serialization.
func (v Value) String() string {
	if v.kind == Int {
		return strconv.FormatInt(v.i, 10)
	}
	return v.s
}

// Tuple is one row, with values in schema column order.
type Tuple []Value

// Table holds the rows of one schema with a primary-key index.
//
// pkIndex maps serialized keys to *virtual* row positions: the position
// a row would have if no delete had ever compacted the slice. Rows keep
// their virtual position for life, so a delete only removes its own map
// entry instead of rewriting every entry behind it — the fixup that
// made deletes O(table) in map writes. deadPos records the virtual
// positions vacated since the last compaction, sorted ascending; the
// actual position of a live row is its virtual position minus the dead
// entries before it (rowPos). Virtual and actual coincide while deadPos
// is empty, and a compaction (every compactEvery deletes) restores that
// state, bounding both the deadPos scan and the coordinate drift.
type Table struct {
	db      *Database
	schema  *Schema
	colIdx  map[string]int
	pkCols  []int
	rows    []Tuple
	pkIndex map[string]int
	deadPos []int
}

// compactEvery bounds deadPos: after this many deletes the pkIndex is
// rewritten to actual coordinates in one pass. Small enough that the
// binary search in rowPos stays trivial, large enough that the O(table)
// rewrite is amortized over many deletes.
const compactEvery = 256

// rowPos converts a virtual pkIndex position to the row's actual index
// in t.rows.
func (t *Table) rowPos(virtual int) int {
	if len(t.deadPos) == 0 {
		return virtual
	}
	return virtual - sort.SearchInts(t.deadPos, virtual)
}

// nextVirtual is the virtual position the next inserted row receives.
// Live rows and dead positions partition [0, nextVirtual), so this is
// always the maximum — an append stays an append in both spaces.
func (t *Table) nextVirtual() int { return len(t.rows) + len(t.deadPos) }

// compact rewrites pkIndex into actual coordinates and clears deadPos.
func (t *Table) compact() {
	for k, v := range t.pkIndex {
		t.pkIndex[k] = t.rowPos(v)
	}
	t.deadPos = t.deadPos[:0]
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len reports the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Row returns the i-th row.
func (t *Table) Row(i int) Tuple { return t.rows[i] }

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// pkKey serializes a row's primary key.
func (t *Table) pkKey(row Tuple) string {
	parts := make([]string, len(t.pkCols))
	for i, c := range t.pkCols {
		parts[i] = row[c].String()
	}
	return strings.Join(parts, "|")
}

// Insert appends a row after validating arity, types, and primary-key
// uniqueness. Once the database is mutable (EnableMutations), rows must
// go through Database.Insert instead so reference counts and change
// capture stay consistent.
func (t *Table) Insert(vals ...Value) error {
	if t.db != nil && t.db.mutable {
		return fmt.Errorf("relational: %s is mutable; insert through Database.Insert", t.schema.Name)
	}
	return t.insert(vals)
}

// insert is the constraint-checked append shared by the bulk path and
// the mutation path.
func (t *Table) insert(vals []Value) error {
	if len(vals) != len(t.schema.Columns) {
		return fmt.Errorf("relational: %s expects %d values, got %d",
			t.schema.Name, len(t.schema.Columns), len(vals))
	}
	for i, v := range vals {
		if v.kind != t.schema.Columns[i].Type {
			return fmt.Errorf("relational: %s.%s: wrong type for value %q",
				t.schema.Name, t.schema.Columns[i].Name, v.String())
		}
	}
	// Copy defensively: bulk loaders reuse their value buffer across
	// rows, and stored tuples must not alias caller memory.
	row := append(Tuple(nil), vals...)
	key := t.pkKey(row)
	if _, dup := t.pkIndex[key]; dup {
		return fmt.Errorf("relational: duplicate primary key %s in %s", key, t.schema.Name)
	}
	t.pkIndex[key] = t.nextVirtual()
	t.rows = append(t.rows, row)
	return nil
}

// RowKey serializes the i-th row's primary key (pipe-joined key
// columns), the form Lookup and Database.Delete address rows by.
func (t *Table) RowKey(i int) string { return t.pkKey(t.rows[i]) }

// Lookup finds a row by serialized primary key.
func (t *Table) Lookup(pk string) (Tuple, bool) {
	i, ok := t.pkIndex[pk]
	if !ok {
		return nil, false
	}
	return t.rows[t.rowPos(i)], true
}

// ForeignKey declares that FromTable.FromColumn references the
// single-column primary key of ToTable.
type ForeignKey struct {
	FromTable  string
	FromColumn string
	ToTable    string
}

// Database is a set of tables with foreign-key constraints. After
// EnableMutations it additionally tracks per-constraint reference
// counts and captures every Insert/Delete as a Change (see mutate.go).
type Database struct {
	tables map[string]*Table
	order  []string
	fks    []ForeignKey

	mutable   bool
	refCounts []map[string]int // parallel to fks: referenced key → count
	changes   []Change
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// CreateTable registers a schema and returns its table.
func (db *Database) CreateTable(s Schema) (*Table, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("relational: table needs a name")
	}
	if _, dup := db.tables[s.Name]; dup {
		return nil, fmt.Errorf("relational: table %s already exists", s.Name)
	}
	if len(s.Columns) == 0 {
		return nil, fmt.Errorf("relational: table %s needs columns", s.Name)
	}
	t := &Table{
		db:      db,
		schema:  &s,
		colIdx:  make(map[string]int, len(s.Columns)),
		pkIndex: make(map[string]int),
	}
	for i, c := range s.Columns {
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("relational: duplicate column %s.%s", s.Name, c.Name)
		}
		t.colIdx[c.Name] = i
	}
	if len(s.PrimaryKey) == 0 {
		return nil, fmt.Errorf("relational: table %s needs a primary key", s.Name)
	}
	for _, pk := range s.PrimaryKey {
		i, ok := t.colIdx[pk]
		if !ok {
			return nil, fmt.Errorf("relational: primary key column %s.%s does not exist", s.Name, pk)
		}
		t.pkCols = append(t.pkCols, i)
	}
	db.tables[s.Name] = t
	db.order = append(db.order, s.Name)
	return t, nil
}

// Table returns a table by name.
func (db *Database) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// Tables returns the table names in creation order.
func (db *Database) Tables() []string { return db.order }

// AddForeignKey registers a constraint after validating that the
// referenced tables and columns exist and the target key is
// single-column.
func (db *Database) AddForeignKey(fk ForeignKey) error {
	from, ok := db.tables[fk.FromTable]
	if !ok {
		return fmt.Errorf("relational: foreign key from unknown table %s", fk.FromTable)
	}
	if from.ColumnIndex(fk.FromColumn) < 0 {
		return fmt.Errorf("relational: foreign key from unknown column %s.%s", fk.FromTable, fk.FromColumn)
	}
	to, ok := db.tables[fk.ToTable]
	if !ok {
		return fmt.Errorf("relational: foreign key to unknown table %s", fk.ToTable)
	}
	if len(to.schema.PrimaryKey) != 1 {
		return fmt.Errorf("relational: foreign key target %s must have a single-column primary key", fk.ToTable)
	}
	db.fks = append(db.fks, fk)
	if db.mutable {
		// Keep the parallel reference-count array in sync when a
		// constraint arrives after EnableMutations.
		db.refCounts = append(db.refCounts, countRefs(from, fk))
	}
	return nil
}

// ForeignKeys returns the declared constraints.
func (db *Database) ForeignKeys() []ForeignKey { return db.fks }

// NumTuples counts every row in every table — the paper's dataset size
// measure.
func (db *Database) NumTuples() int {
	n := 0
	for _, name := range db.order {
		n += db.tables[name].Len()
	}
	return n
}

// CheckIntegrity verifies that every foreign-key value resolves to an
// existing referenced row.
func (db *Database) CheckIntegrity() error {
	for _, fk := range db.fks {
		from := db.tables[fk.FromTable]
		to := db.tables[fk.ToTable]
		ci := from.ColumnIndex(fk.FromColumn)
		for r := 0; r < from.Len(); r++ {
			val := from.Row(r)[ci].String()
			if _, ok := to.Lookup(val); !ok {
				return fmt.Errorf("relational: %s row %d: %s=%s has no match in %s",
					fk.FromTable, r, fk.FromColumn, val, fk.ToTable)
			}
		}
	}
	return nil
}
