package relational

import (
	"bytes"
	"strings"
	"testing"
)

func newPeopleTable(t *testing.T) *Table {
	t.Helper()
	db := NewDatabase()
	tab, err := db.CreateTable(Schema{
		Name: "People",
		Columns: []Column{
			{Name: "Id", Type: Int},
			{Name: "Name", Type: String, FullText: true},
		},
		PrimaryKey: []string{"Id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestLoadCSVPositional(t *testing.T) {
	tab := newPeopleTable(t)
	n, err := LoadCSV(tab, strings.NewReader("1,ada\n2,alan\n"), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || tab.Len() != 2 {
		t.Fatalf("inserted %d rows", n)
	}
	row, ok := tab.Lookup("2")
	if !ok || row[1].Str() != "alan" {
		t.Fatalf("row = %v", row)
	}
}

func TestLoadCSVHeaderReordered(t *testing.T) {
	tab := newPeopleTable(t)
	data := "name,extra,id\nada,x,1\nalan,y,2\n"
	n, err := LoadCSV(tab, strings.NewReader(data), CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("inserted %d", n)
	}
	row, _ := tab.Lookup("1")
	if row[1].Str() != "ada" {
		t.Fatalf("header mapping broken: %v", row)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	tab := newPeopleTable(t)
	if _, err := LoadCSV(tab, strings.NewReader("notanint,ada\n"), CSVOptions{}); err == nil {
		t.Fatal("non-integer id should fail")
	}
	tab2 := newPeopleTable(t)
	if _, err := LoadCSV(tab2, strings.NewReader("1\n"), CSVOptions{}); err == nil {
		t.Fatal("missing field should fail")
	}
	tab3 := newPeopleTable(t)
	if _, err := LoadCSV(tab3, strings.NewReader("wrong,header\n1,ada\n"), CSVOptions{Header: true}); err == nil {
		t.Fatal("header without required columns should fail")
	}
	tab4 := newPeopleTable(t)
	if _, err := LoadCSV(tab4, strings.NewReader("1,ada\n1,dup\n"), CSVOptions{}); err == nil {
		t.Fatal("duplicate key should surface the insert error")
	}
}

func TestLoadCSVTrimAndDelimiter(t *testing.T) {
	tab := newPeopleTable(t)
	data := " 1 ; ada \n 2 ; alan \n"
	n, err := LoadCSV(tab, strings.NewReader(data), CSVOptions{Comma: ';', TrimSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("inserted %d", n)
	}
	row, _ := tab.Lookup("1")
	if row[1].Str() != "ada" {
		t.Fatalf("trim broken: %q", row[1].Str())
	}
}

func TestDumpLoadRoundTrip(t *testing.T) {
	tab := newPeopleTable(t)
	if _, err := LoadCSV(tab, strings.NewReader("1,ada lovelace\n2,\"alan, turing\"\n"), CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := DumpCSV(tab, &buf); err != nil {
		t.Fatal(err)
	}
	tab2 := newPeopleTable(t)
	n, err := LoadCSV(tab2, &buf, CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("round trip inserted %d", n)
	}
	row, _ := tab2.Lookup("2")
	if row[1].Str() != "alan, turing" {
		t.Fatalf("quoted field broken: %q", row[1].Str())
	}
}
