package relational

import (
	"testing"
)

// mutableDB builds the two-table fixture the mutation tests share:
// Author(Aid, Name) ← Write(Aid, Pid).
func mutableDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	authors, err := db.CreateTable(Schema{
		Name: "Author",
		Columns: []Column{
			{Name: "Aid", Type: Int},
			{Name: "Name", Type: String, FullText: true},
		},
		PrimaryKey: []string{"Aid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.CreateTable(Schema{
		Name: "Write",
		Columns: []Column{
			{Name: "Aid", Type: Int},
			{Name: "Pid", Type: Int},
		},
		PrimaryKey: []string{"Aid", "Pid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddForeignKey(ForeignKey{FromTable: "Write", FromColumn: "Aid", ToTable: "Author"}); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := authors.Insert(IntV(i), StrV("name")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.EnableMutations(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestMutationsInsertDelete(t *testing.T) {
	db := mutableDB(t)
	if err := db.Insert("Write", IntV(1), IntV(100)); err != nil {
		t.Fatal(err)
	}
	// Referenced author cannot be deleted while the write row exists.
	if err := db.Delete("Author", "1"); err == nil {
		t.Fatal("deleting a referenced author should fail")
	}
	// Unreferenced author can.
	if err := db.Delete("Author", "2"); err != nil {
		t.Fatal(err)
	}
	// Delete the child, then the parent becomes deletable.
	if err := db.Delete("Write", "1|100"); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("Author", "1"); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}

	changes := db.Changes()
	if len(changes) != 4 {
		t.Fatalf("captured %d changes, want 4", len(changes))
	}
	ins := changes[0]
	if ins.Op != ChangeInsert || ins.Ref != (NodeRef{Table: "Write", PK: "1|100"}) {
		t.Fatalf("unexpected first change %+v", ins)
	}
	if len(ins.Targets) != 1 || ins.Targets[0] != (NodeRef{Table: "Author", PK: "1"}) {
		t.Fatalf("insert targets = %+v, want Author:1", ins.Targets)
	}
	del := changes[2]
	if del.Op != ChangeDelete || del.Ref != (NodeRef{Table: "Write", PK: "1|100"}) {
		t.Fatalf("unexpected third change %+v", del)
	}
	if len(del.Targets) != 1 || del.Targets[0] != (NodeRef{Table: "Author", PK: "1"}) {
		t.Fatalf("delete targets = %+v, want Author:1", del.Targets)
	}
	db.ResetChanges()
	if len(db.Changes()) != 0 {
		t.Fatal("ResetChanges did not clear the buffer")
	}
}

func TestMutationsRejectInvalid(t *testing.T) {
	db := mutableDB(t)
	// Insert referencing a missing author fails closed.
	if err := db.Insert("Write", IntV(99), IntV(1)); err == nil {
		t.Fatal("insert with dangling foreign key should fail")
	}
	// Direct table inserts are rejected once mutable.
	authors, _ := db.Table("Author")
	if err := authors.Insert(IntV(9), StrV("x")); err == nil {
		t.Fatal("direct Table.Insert on a mutable database should fail")
	}
	// Deleting a missing row fails.
	if err := db.Delete("Write", "7|7"); err != nil {
		// expected
	} else {
		t.Fatal("delete of missing row should fail")
	}
	// Nothing should have been captured.
	if n := len(db.Changes()); n != 0 {
		t.Fatalf("rejected mutations captured %d changes", n)
	}
}

func TestDeletePreservesRowOrder(t *testing.T) {
	db := mutableDB(t)
	authors, _ := db.Table("Author")
	if err := db.Delete("Author", "1"); err != nil {
		t.Fatal(err)
	}
	// Survivors 0 and 2 keep their relative order and the index maps
	// keys to the shifted positions.
	if got := authors.Row(0)[0].Int(); got != 0 {
		t.Fatalf("row 0 = Aid %d, want 0", got)
	}
	if got := authors.Row(1)[0].Int(); got != 2 {
		t.Fatalf("row 1 = Aid %d, want 2", got)
	}
	if got := authors.RowKey(1); got != "2" {
		t.Fatalf("RowKey(1) = %q, want \"2\"", got)
	}
	if _, ok := authors.Lookup("2"); !ok {
		t.Fatal("Lookup(2) failed after delete shifted rows")
	}
	if _, ok := authors.Lookup("1"); ok {
		t.Fatal("deleted key still resolves")
	}
}

func TestLateForeignKeyKeepsCounts(t *testing.T) {
	db := mutableDB(t)
	papers, err := db.CreateTable(Schema{
		Name: "Paper",
		Columns: []Column{
			{Name: "Pid", Type: Int},
			{Name: "Title", Type: String, FullText: true},
		},
		PrimaryKey: []string{"Pid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = papers
	if err := db.AddForeignKey(ForeignKey{FromTable: "Write", FromColumn: "Pid", ToTable: "Paper"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Paper", IntV(5), StrV("title words")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Write", IntV(0), IntV(5)); err != nil {
		t.Fatal(err)
	}
	// The late constraint's counts must block deleting the paper.
	if err := db.Delete("Paper", "5"); err == nil {
		t.Fatal("deleting a referenced paper should fail after late AddForeignKey")
	}
	if err := db.Delete("Write", "0|5"); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("Paper", "5"); err != nil {
		t.Fatal(err)
	}
}
