package relational

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVOptions controls LoadCSV.
type CSVOptions struct {
	// Header indicates the first record names columns; rows are then
	// matched by name (any order, extra columns ignored). Without a
	// header, values are positional and must match the schema's arity.
	Header bool
	// Comma overrides the field delimiter (default ',').
	Comma rune
	// TrimSpace trims surrounding whitespace from every field.
	TrimSpace bool
}

// LoadCSV bulk-inserts rows from CSV data into the table, converting
// fields to the schema's column types. It returns the number of rows
// inserted; the first conversion or constraint error aborts the load
// with the offending line number.
//
// This is how real dumps (e.g. an actual DBLP export) are brought into
// the engine instead of the synthetic generators.
func LoadCSV(t *Table, r io.Reader, opt CSVOptions) (int, error) {
	cr := csv.NewReader(r)
	if opt.Comma != 0 {
		cr.Comma = opt.Comma
	}
	cr.FieldsPerRecord = -1 // validated manually for better messages

	cols := t.Schema().Columns
	// order[i] is the record field index feeding column i.
	order := make([]int, len(cols))
	for i := range order {
		order[i] = i
	}

	line := 0
	if opt.Header {
		rec, err := cr.Read()
		if err != nil {
			return 0, fmt.Errorf("relational: reading CSV header: %w", err)
		}
		line++
		byName := make(map[string]int, len(rec))
		for i, name := range rec {
			byName[strings.ToLower(strings.TrimSpace(name))] = i
		}
		for i, c := range cols {
			idx, ok := byName[strings.ToLower(c.Name)]
			if !ok {
				return 0, fmt.Errorf("relational: CSV header missing column %s.%s", t.Schema().Name, c.Name)
			}
			order[i] = idx
		}
	}

	inserted := 0
	vals := make([]Value, len(cols))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return inserted, nil
		}
		if err != nil {
			return inserted, fmt.Errorf("relational: CSV line %d: %w", line+1, err)
		}
		line++
		for i, c := range cols {
			if order[i] >= len(rec) {
				return inserted, fmt.Errorf("relational: CSV line %d: %d fields, column %s needs field %d",
					line, len(rec), c.Name, order[i]+1)
			}
			field := rec[order[i]]
			if opt.TrimSpace {
				field = strings.TrimSpace(field)
			}
			switch c.Type {
			case Int:
				n, err := strconv.ParseInt(field, 10, 64)
				if err != nil {
					return inserted, fmt.Errorf("relational: CSV line %d: column %s: %q is not an integer",
						line, c.Name, field)
				}
				vals[i] = IntV(n)
			default:
				vals[i] = StrV(field)
			}
		}
		if err := t.Insert(vals...); err != nil {
			return inserted, fmt.Errorf("relational: CSV line %d: %w", line, err)
		}
		inserted++
	}
}

// DumpCSV writes the table as CSV with a header row, the inverse of
// LoadCSV.
func DumpCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	cols := t.Schema().Columns
	header := make([]string, len(cols))
	for i, c := range cols {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(cols))
	for r := 0; r < t.Len(); r++ {
		row := t.Row(r)
		for i := range cols {
			rec[i] = row[i].String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
