package heap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBinaryBasic(t *testing.T) {
	var h Binary
	if h.Len() != 0 {
		t.Fatal("zero-value heap should be empty")
	}
	h.Push(3, 30)
	h.Push(1, 10)
	h.Push(2, 20)
	wantDist := []float64{1, 2, 3}
	wantNode := []int32{10, 20, 30}
	for i := range wantDist {
		it := h.Pop()
		if it.Dist != wantDist[i] || it.Node != wantNode[i] {
			t.Fatalf("pop %d = %+v, want (%v,%v)", i, it, wantDist[i], wantNode[i])
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap should be empty after popping everything")
	}
}

func TestBinaryReset(t *testing.T) {
	var h Binary
	for i := 0; i < 100; i++ {
		h.Push(float64(i), int32(i))
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", h.Len())
	}
	h.Push(5, 1)
	h.Push(4, 2)
	if it := h.Pop(); it.Dist != 4 {
		t.Fatalf("pop after reset = %v, want 4", it.Dist)
	}
}

func TestBinaryRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		var h Binary
		n := rng.Intn(500) + 1
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = rng.Float64() * 100
			h.Push(keys[i], int32(i))
		}
		sort.Float64s(keys)
		for i := 0; i < n; i++ {
			if got := h.Pop().Dist; got != keys[i] {
				t.Fatalf("trial %d pop %d = %v, want %v", trial, i, got, keys[i])
			}
		}
	}
}

func TestBinaryQuickProperty(t *testing.T) {
	prop := func(keys []float64) bool {
		for _, k := range keys {
			if k != k { // NaN
				return true
			}
		}
		var h Binary
		for i, k := range keys {
			h.Push(k, int32(i))
		}
		want := append([]float64(nil), keys...)
		sort.Float64s(want)
		for i := range want {
			if h.Pop().Dist != want[i] {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryInterleaved(t *testing.T) {
	// Interleave pushes and pops; popped sequence must always be the
	// minimum of what is currently inside.
	rng := rand.New(rand.NewSource(9))
	var h Binary
	oracle := map[float64]int{}
	for step := 0; step < 3000; step++ {
		if rng.Intn(2) == 0 || h.Len() == 0 {
			k := float64(rng.Intn(1000))
			h.Push(k, 0)
			oracle[k]++
		} else {
			min := -1.0
			for k := range oracle {
				if min < 0 || k < min {
					min = k
				}
			}
			got := h.Pop().Dist
			if got != min {
				t.Fatalf("step %d: popped %v, oracle min %v", step, got, min)
			}
			oracle[got]--
			if oracle[got] == 0 {
				delete(oracle, got)
			}
		}
	}
}
