// Package heap provides the priority queues used by the community search
// algorithms: a Fibonacci heap, which Algorithm 5 of the paper uses to
// order candidate cores (O(1) insert, O(log n) amortized extract-min),
// and a lightweight binary heap used inside Dijkstra's algorithm.
package heap

import "errors"

// ErrKeyIncrease is returned by DecreaseKey when the new key is larger
// than the node's current key.
var ErrKeyIncrease = errors.New("heap: DecreaseKey called with a larger key")

// FibNode is a node of a Fibonacci heap. Callers keep the pointer
// returned by Insert to later call DecreaseKey on it.
type FibNode[T any] struct {
	// Key is the priority of the node; smaller keys are extracted first.
	Key float64
	// Value is the caller payload carried with the node.
	Value T

	parent *FibNode[T]
	child  *FibNode[T]
	left   *FibNode[T]
	right  *FibNode[T]
	degree int
	mark   bool
}

// Fib is a min-ordered Fibonacci heap. The zero value is not usable;
// create heaps with NewFib.
type Fib[T any] struct {
	min *FibNode[T]
	n   int
}

// NewFib returns an empty Fibonacci heap.
func NewFib[T any]() *Fib[T] { return &Fib[T]{} }

// Len reports the number of nodes currently in the heap.
func (h *Fib[T]) Len() int { return h.n }

// Insert adds a new node with the given key and value and returns it.
// The returned node remains valid until it is extracted.
func (h *Fib[T]) Insert(key float64, v T) *FibNode[T] {
	x := &FibNode[T]{Key: key, Value: v}
	x.left = x
	x.right = x
	h.addRoot(x)
	h.n++
	return x
}

// Min returns the node with the smallest key without removing it, or
// nil if the heap is empty.
func (h *Fib[T]) Min() *FibNode[T] { return h.min }

// ExtractMin removes and returns the node with the smallest key, or nil
// if the heap is empty.
func (h *Fib[T]) ExtractMin() *FibNode[T] {
	z := h.min
	if z == nil {
		return nil
	}
	// Promote all children of z to the root list.
	for z.child != nil {
		c := z.child
		z.child = c.right
		if z.child == c { // last child
			z.child = nil
		} else {
			c.left.right = c.right
			c.right.left = c.left
		}
		c.parent = nil
		c.left = c
		c.right = c
		h.addRoot(c)
	}
	// Remove z from the root list.
	if z.right == z {
		h.min = nil
	} else {
		z.left.right = z.right
		z.right.left = z.left
		h.min = z.right
		h.consolidate()
	}
	h.n--
	z.left = nil
	z.right = nil
	return z
}

// DecreaseKey lowers the key of node x to k. It returns ErrKeyIncrease
// if k is greater than the current key.
func (h *Fib[T]) DecreaseKey(x *FibNode[T], k float64) error {
	if k > x.Key {
		return ErrKeyIncrease
	}
	x.Key = k
	p := x.parent
	if p != nil && x.Key < p.Key {
		h.cut(x, p)
		h.cascadingCut(p)
	}
	if x.Key < h.min.Key {
		h.min = x
	}
	return nil
}

// Meld moves every node of other into h, leaving other empty. Nodes of
// other remain valid and may still be passed to h.DecreaseKey.
func (h *Fib[T]) Meld(other *Fib[T]) {
	if other == nil || other.min == nil {
		return
	}
	if h.min == nil {
		h.min = other.min
		h.n = other.n
	} else {
		// Splice the two circular root lists together.
		a, b := h.min, other.min
		ar, bl := a.right, b.left
		a.right = b
		b.left = a
		bl.right = ar
		ar.left = bl
		if b.Key < a.Key {
			h.min = b
		}
		h.n += other.n
	}
	other.min = nil
	other.n = 0
}

func (h *Fib[T]) addRoot(x *FibNode[T]) {
	if h.min == nil {
		h.min = x
		x.left = x
		x.right = x
		return
	}
	// Insert x to the right of min.
	x.left = h.min
	x.right = h.min.right
	h.min.right.left = x
	h.min.right = x
	if x.Key < h.min.Key {
		h.min = x
	}
}

// consolidate links roots of equal degree until all root degrees are
// distinct, then recomputes min.
func (h *Fib[T]) consolidate() {
	// Max degree is O(log n); 64 slots cover any addressable heap.
	var slots [64]*FibNode[T]

	// Collect roots first: linking mutates the root list.
	var roots []*FibNode[T]
	r := h.min
	if r != nil {
		for {
			roots = append(roots, r)
			r = r.right
			if r == h.min {
				break
			}
		}
	}
	for _, x := range roots {
		d := x.degree
		for slots[d] != nil {
			y := slots[d]
			if y.Key < x.Key {
				x, y = y, x
			}
			h.link(y, x)
			slots[d] = nil
			d++
		}
		slots[d] = x
	}
	h.min = nil
	for _, x := range slots {
		if x == nil {
			continue
		}
		x.left = x
		x.right = x
		if h.min == nil {
			h.min = x
		} else {
			x.left = h.min
			x.right = h.min.right
			h.min.right.left = x
			h.min.right = x
			if x.Key < h.min.Key {
				h.min = x
			}
		}
	}
}

// link makes y a child of x. Both must be roots and y.Key >= x.Key.
func (h *Fib[T]) link(y, x *FibNode[T]) {
	// Remove y from the root list.
	y.left.right = y.right
	y.right.left = y.left
	y.parent = x
	if x.child == nil {
		x.child = y
		y.left = y
		y.right = y
	} else {
		y.left = x.child
		y.right = x.child.right
		x.child.right.left = y
		x.child.right = y
	}
	x.degree++
	y.mark = false
}

// cut detaches x from its parent p and moves it to the root list.
func (h *Fib[T]) cut(x, p *FibNode[T]) {
	if x.right == x {
		p.child = nil
	} else {
		x.left.right = x.right
		x.right.left = x.left
		if p.child == x {
			p.child = x.right
		}
	}
	p.degree--
	x.parent = nil
	x.mark = false
	x.left = x
	x.right = x
	h.addRoot(x)
}

func (h *Fib[T]) cascadingCut(y *FibNode[T]) {
	for {
		p := y.parent
		if p == nil {
			return
		}
		if !y.mark {
			y.mark = true
			return
		}
		h.cut(y, p)
		y = p
	}
}
