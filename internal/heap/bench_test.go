package heap

import (
	"math/rand"
	"testing"
)

func BenchmarkFibInsertExtract(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]float64, 1024)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewFib[int]()
		for j, k := range keys {
			h.Insert(k, j)
		}
		for h.Len() > 0 {
			h.ExtractMin()
		}
	}
}

func BenchmarkFibDecreaseKey(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := NewFib[int]()
		nodes := make([]*FibNode[int], 1024)
		for j := range nodes {
			nodes[j] = h.Insert(float64(1000+j), j)
		}
		h.Insert(0, -1)
		h.ExtractMin() // force consolidation so cuts happen
		b.StartTimer()
		for j, n := range nodes {
			if err := h.DecreaseKey(n, float64(j)); err != nil {
				b.Fatal(err)
			}
		}
		_ = rng
	}
}

func BenchmarkBinaryPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]float64, 4096)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	var h Binary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		for j, k := range keys {
			h.Push(k, int32(j))
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}
