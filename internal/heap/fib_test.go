package heap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func drain[T any](h *Fib[T]) []float64 {
	var out []float64
	for h.Len() > 0 {
		out = append(out, h.ExtractMin().Key)
	}
	return out
}

func TestFibEmpty(t *testing.T) {
	h := NewFib[int]()
	if h.Len() != 0 {
		t.Fatalf("Len of empty heap = %d, want 0", h.Len())
	}
	if h.Min() != nil {
		t.Fatal("Min of empty heap should be nil")
	}
	if h.ExtractMin() != nil {
		t.Fatal("ExtractMin of empty heap should be nil")
	}
}

func TestFibSingle(t *testing.T) {
	h := NewFib[string]()
	h.Insert(3.5, "x")
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
	if got := h.Min(); got == nil || got.Key != 3.5 || got.Value != "x" {
		t.Fatalf("Min = %+v, want key 3.5 value x", got)
	}
	n := h.ExtractMin()
	if n == nil || n.Key != 3.5 || n.Value != "x" {
		t.Fatalf("ExtractMin = %+v", n)
	}
	if h.Len() != 0 || h.Min() != nil {
		t.Fatal("heap should be empty after extracting the only node")
	}
}

func TestFibSortsRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200) + 1
		h := NewFib[int]()
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = rng.NormFloat64() * 100
			h.Insert(keys[i], i)
		}
		got := drain(h)
		sort.Float64s(keys)
		if len(got) != n {
			t.Fatalf("drained %d keys, want %d", len(got), n)
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("trial %d: position %d = %v, want %v", trial, i, got[i], keys[i])
			}
		}
	}
}

func TestFibDuplicateKeys(t *testing.T) {
	h := NewFib[int]()
	for i := 0; i < 10; i++ {
		h.Insert(1.0, i)
	}
	seen := make(map[int]bool)
	for h.Len() > 0 {
		n := h.ExtractMin()
		if n.Key != 1.0 {
			t.Fatalf("key = %v, want 1.0", n.Key)
		}
		if seen[n.Value] {
			t.Fatalf("value %d extracted twice", n.Value)
		}
		seen[n.Value] = true
	}
	if len(seen) != 10 {
		t.Fatalf("extracted %d distinct values, want 10", len(seen))
	}
}

func TestFibDecreaseKey(t *testing.T) {
	h := NewFib[int]()
	var nodes []*FibNode[int]
	for i := 0; i < 100; i++ {
		nodes = append(nodes, h.Insert(float64(100+i), i))
	}
	// Force tree structure so decreaseKey exercises cuts.
	h.Insert(0, -1)
	h.ExtractMin()

	if err := h.DecreaseKey(nodes[50], 5); err != nil {
		t.Fatal(err)
	}
	if err := h.DecreaseKey(nodes[99], 1); err != nil {
		t.Fatal(err)
	}
	if err := h.DecreaseKey(nodes[99], 2); err != ErrKeyIncrease {
		t.Fatalf("increasing a key returned %v, want ErrKeyIncrease", err)
	}
	first := h.ExtractMin()
	if first.Value != 99 || first.Key != 1 {
		t.Fatalf("first = (%v,%d), want (1,99)", first.Key, first.Value)
	}
	second := h.ExtractMin()
	if second.Value != 50 || second.Key != 5 {
		t.Fatalf("second = (%v,%d), want (5,50)", second.Key, second.Value)
	}
}

// TestFibRandomOpsOracle runs a long random sequence of insert,
// extract-min, and decrease-key operations and compares every
// extraction against a brute-force oracle.
func TestFibRandomOpsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type entry struct {
		node *FibNode[int]
		key  float64
	}
	h := NewFib[int]()
	live := make(map[int]*entry)
	next := 0
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // insert
			k := rng.Float64() * 1000
			live[next] = &entry{node: h.Insert(k, next), key: k}
			next++
		case op < 8 && len(live) > 0: // decrease a random live key
			var id int
			for id = range live {
				break
			}
			e := live[id]
			nk := e.key * rng.Float64()
			if err := h.DecreaseKey(e.node, nk); err != nil {
				t.Fatalf("step %d: DecreaseKey(%v->%v): %v", step, e.key, nk, err)
			}
			e.key = nk
		case len(live) > 0: // extract min and check against oracle
			want := -1
			for id, e := range live {
				if want == -1 || e.key < live[want].key {
					want = id
				}
			}
			got := h.ExtractMin()
			if got.Key != live[want].key {
				t.Fatalf("step %d: extracted key %v, oracle min %v", step, got.Key, live[want].key)
			}
			delete(live, got.Value)
		}
		if h.Len() != len(live) {
			t.Fatalf("step %d: Len = %d, oracle has %d", step, h.Len(), len(live))
		}
	}
}

func TestFibMeld(t *testing.T) {
	a := NewFib[int]()
	b := NewFib[int]()
	var want []float64
	for i := 0; i < 30; i++ {
		a.Insert(float64(i*3), i)
		want = append(want, float64(i*3))
	}
	for i := 0; i < 20; i++ {
		b.Insert(float64(i*5+1), i)
		want = append(want, float64(i*5+1))
	}
	a.Meld(b)
	if b.Len() != 0 {
		t.Fatalf("melded-from heap has Len %d, want 0", b.Len())
	}
	if a.Len() != 50 {
		t.Fatalf("melded heap has Len %d, want 50", a.Len())
	}
	got := drain(a)
	sort.Float64s(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d = %v, want %v", i, got[i], want[i])
		}
	}
	a.Meld(nil) // melding nil is a no-op
	a.Meld(NewFib[int]())
}

func TestFibMeldIntoEmpty(t *testing.T) {
	a := NewFib[int]()
	b := NewFib[int]()
	b.Insert(2, 0)
	b.Insert(1, 1)
	a.Meld(b)
	if a.Len() != 2 || a.Min().Key != 1 {
		t.Fatalf("after meld into empty: Len=%d Min=%v", a.Len(), a.Min())
	}
}

// TestFibQuickSortsAnything is a property test: for any float64 slice,
// inserting all values and extracting them yields the sorted slice.
func TestFibQuickSortsAnything(t *testing.T) {
	prop := func(keys []float64) bool {
		// NaN keys have no meaningful order; skip them.
		for _, k := range keys {
			if k != k {
				return true
			}
		}
		h := NewFib[struct{}]()
		for _, k := range keys {
			h.Insert(k, struct{}{})
		}
		got := drain(h)
		want := append([]float64(nil), keys...)
		sort.Float64s(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
