package heap

// DijkstraItem is an entry of the binary heap used by Dijkstra's
// algorithm: a node id with its tentative distance.
type DijkstraItem struct {
	Dist float64
	Node int32
}

// less is the heap order: by distance, then by node id. The node-id
// tie-break makes the pop sequence canonical — independent of insertion
// order — so a bounded Dijkstra truncated to a smaller radius settles
// nodes in exactly the order a fresh run at that radius would. The
// keyword-artifact cache (internal/kwcache) relies on this to serve
// persisted neighbor sets byte-identically to live execution.
func less(a, b DijkstraItem) bool {
	return a.Dist < b.Dist || (a.Dist == b.Dist && a.Node < b.Node)
}

// Binary is a plain array-backed binary min-heap of DijkstraItem.
// It supports lazy deletion: stale entries are pushed rather than
// decrease-keyed and filtered by the caller on pop, which is the fastest
// practical strategy for sparse-graph Dijkstra. The zero value is an
// empty, usable heap.
type Binary struct {
	a []DijkstraItem
}

// Len reports the number of entries, including stale ones.
func (h *Binary) Len() int { return len(h.a) }

// Reset empties the heap while retaining its backing storage, so a
// workspace heap can be reused across many Dijkstra runs without
// reallocating.
func (h *Binary) Reset() { h.a = h.a[:0] }

// Push adds an entry.
func (h *Binary) Push(dist float64, node int32) {
	h.a = append(h.a, DijkstraItem{Dist: dist, Node: node})
	h.up(len(h.a) - 1)
}

// Pop removes and returns the smallest entry under the (Dist, Node)
// order. It must not be called on an empty heap; callers gate on Len.
func (h *Binary) Pop() DijkstraItem {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

func (h *Binary) up(i int) {
	it := h.a[i]
	for i > 0 {
		p := (i - 1) / 2
		if !less(it, h.a[p]) {
			break
		}
		h.a[i] = h.a[p]
		i = p
	}
	h.a[i] = it
}

func (h *Binary) down(i int) {
	it := h.a[i]
	n := len(h.a)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && less(h.a[r], h.a[l]) {
			small = r
		}
		if !less(h.a[small], it) {
			break
		}
		h.a[i] = h.a[small]
		i = small
	}
	h.a[i] = it
}
