package delta

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"commdb/internal/graph"
	"commdb/internal/index"
	"commdb/internal/prof"
	"commdb/internal/relational"
	"commdb/internal/sssp"
)

// Maintainer turns mutation batches into fresh, bit-identical graph
// and index artifacts without paying the full per-term Dijkstra build
// each time.
//
// The split of work follows the cost structure of the pipeline. The
// graph itself is cheap: ToGraph is one linear pass over the tuples,
// and because node IDs are dense in (table order × row order), any
// insert or delete renumbers IDs anyway — so each batch re-materializes
// the graph from the database and gets renumbering, log-weight updates,
// and CSR layout for free, identical to a from-scratch run. The index
// is the expensive layer (one bounded reverse Dijkstra per distinct
// term — the 355s the paper reports for DBLP), and that is what the
// delta bounds: only terms whose R-radius neighborhood a batch touched
// are recomputed; every other posting list is remapped through the
// strictly monotone old→new node permutation. See DESIGN.md for the
// soundness argument.
//
// Every failure is handled by falling back to a full index build, so
// the maintainer's artifacts are always exactly what cmd/indexbuild
// would produce for the current database state.
type Maintainer struct {
	mu   sync.Mutex
	db   *relational.Database
	opt  index.BuildOptions
	logf func(string, ...any)

	g  *graph.Graph
	nm *relational.NodeMap
	ix *index.Index

	stats Stats
}

// Config sizes a Maintainer.
type Config struct {
	// R is the index radius (the largest Rmax served queries may use).
	R float64
	// Workers bounds index-build parallelism; 0 uses GOMAXPROCS.
	Workers int
	// Logf, when non-nil, receives one line per applied batch and per
	// rejected op.
	Logf func(string, ...any)
}

// BatchStats describes one Apply call.
type BatchStats struct {
	Ops      int            `json:"ops"`
	ByKind   map[string]int `json:"by_kind,omitempty"`
	Rejected int            `json:"rejected,omitempty"`
	// Changed is false when the batch mutated nothing (all ops
	// rejected, or empty); the artifacts are then untouched.
	Changed bool `json:"changed"`
	// FullRebuild marks batches that took the full-build path:
	// structural ops, a partial-rebuild invariant violation, or the
	// very first build.
	FullRebuild bool `json:"full_rebuild,omitempty"`
	Structural  bool `json:"structural,omitempty"`

	Seeds           int `json:"seeds,omitempty"`
	DirtyTerms      int `json:"dirty_terms"`
	TotalTerms      int `json:"total_terms"`
	RecomputedTerms int `json:"recomputed_terms"`
	PatchedTerms    int `json:"patched_terms"`
	RemappedTerms   int `json:"remapped_terms"`

	ApplyMS float64 `json:"apply_ms"`
	// Stages breaks ApplyMS down by pipeline phase (to_graph,
	// dirty_terms, region_mark, fulltext, remap, repair, merge,
	// recompute — see DESIGN's stage taxonomy). Phases that run on a
	// worker pool report CPU time summed across workers, so their sum
	// can exceed ApplyMS.
	Stages map[string]float64 `json:"stages,omitempty"`
}

// Stats is the maintainer's cumulative view, exported to /statsz and
// /metricsz. All fields are maintained under the maintainer's lock;
// Stats() returns a deep copy.
type Stats struct {
	Batches      int64            `json:"batches"`
	Ops          int64            `json:"ops"`
	Applied      map[string]int64 `json:"applied"`
	Rejected     int64            `json:"rejected"`
	FullRebuilds int64            `json:"full_rebuilds"`
	// PartialFallbacks counts batches where the incremental path gave
	// up mid-flight (invariant check failed) and a full build rescued
	// the batch. Always 0 in a healthy system; the golden tests assert
	// that.
	PartialFallbacks int64 `json:"partial_fallbacks"`

	// FullBuildMS is the initial from-scratch index build, the
	// reference point for every delta apply time.
	FullBuildMS float64     `json:"full_build_ms"`
	LastBatch   *BatchStats `json:"last_batch,omitempty"`

	Republishes   int64   `json:"republishes"`
	LastPublishMS float64 `json:"last_publish_ms,omitempty"`

	// StageTotalsMS accumulates every batch's per-phase timings (plus
	// "publish" from NotePublish), so the fixed cost per batch is a
	// served number, not a DESIGN claim.
	StageTotalsMS map[string]float64 `json:"stage_totals_ms,omitempty"`
}

// NewMaintainer takes ownership of db (enabling mutations if needed)
// and performs the initial full build.
func NewMaintainer(db *relational.Database, cfg Config) (*Maintainer, error) {
	if err := db.EnableMutations(); err != nil {
		return nil, err
	}
	db.ResetChanges()
	m := &Maintainer{
		db: db,
		// KeepDistances feeds RebuildPartial's boundary-conditioned
		// repair: dirty terms are patched inside the changed region
		// instead of paying their global per-term Dijkstra again.
		opt:  index.BuildOptions{R: cfg.R, Workers: cfg.Workers, KeepDistances: true},
		logf: cfg.Logf,
		stats: Stats{
			Applied:       make(map[string]int64, 4),
			StageTotalsMS: make(map[string]float64, 8),
		},
	}
	g, nm, err := db.ToGraph()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ix, err := index.Build(g, m.opt)
	if err != nil {
		return nil, err
	}
	m.g, m.nm, m.ix = g, nm, ix
	m.stats.FullBuildMS = msSince(start)
	return m, nil
}

// Apply executes one batch of ops and refreshes the artifacts. Ops
// that violate a constraint are rejected individually (they mutate
// nothing) and counted; the rest of the batch still applies. The
// returned error is reserved for systemic failures — a database whose
// integrity broke or an index build that could not complete — after
// which the maintainer must not be used.
func (m *Maintainer) Apply(ops []Op) (BatchStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	bs := BatchStats{Ops: len(ops), ByKind: make(map[string]int, 4)}

	m.db.ResetChanges()
	for _, op := range ops {
		if op.Structural() {
			bs.Structural = true
		}
		if err := Apply(m.db, op); err != nil {
			bs.Rejected++
			m.logln("delta: op rejected: %v", err)
			continue
		}
		bs.ByKind[op.Kind]++
	}
	changes := m.db.Changes()
	m.db.ResetChanges()
	if len(changes) == 0 && !bs.Structural {
		// Nothing mutated: keep the current artifacts.
		bs.TotalTerms = m.g.Dict().Size()
		m.finish(&bs, start)
		return bs, nil
	}
	bs.Changed = true

	st := prof.NewStages()
	tgEnd := st.Timer("to_graph")
	g1, nm1, err := m.db.ToGraph()
	tgEnd()
	if err != nil {
		return bs, fmt.Errorf("delta: database integrity broken after batch: %w", err)
	}

	opt := m.opt
	opt.Stages = st
	var ix1 *index.Index
	if !bs.Structural {
		ix1 = m.partial(&bs, opt, g1, nm1, changes)
	}
	if ix1 == nil {
		bs.FullRebuild = true
		ix1, err = index.Build(g1, opt)
		if err != nil {
			return bs, fmt.Errorf("delta: full rebuild failed: %w", err)
		}
		bs.DirtyTerms = g1.Dict().Size()
		bs.TotalTerms = g1.Dict().Size()
	}
	m.g, m.nm, m.ix = g1, nm1, ix1
	bs.Stages = st.SnapshotMS()
	m.finish(&bs, start)
	return bs, nil
}

// partial attempts the incremental path; nil means "fall back to a
// full build".
func (m *Maintainer) partial(bs *BatchStats, opt index.BuildOptions, g1 *graph.Graph, nm1 *relational.NodeMap, changes []relational.Change) *index.Index {
	g0, nm0, ix0 := m.g, m.nm, m.ix

	// Old→new node permutation; -1 marks deleted tuples. Strictly
	// monotone over survivors because mutations preserve row order.
	perm := make([]graph.NodeID, g0.NumNodes())
	for v := range perm {
		ref := nm0.Ref(graph.NodeID(v))
		if id, ok := nm1.Node(ref.Table, ref.PK); ok {
			perm[v] = id
		} else {
			perm[v] = -1
		}
	}

	// Seed set C: every changed tuple plus its foreign-key targets —
	// exactly the nodes whose incident edges can appear, disappear, or
	// change weight. Resolved against both generations: a deleted
	// tuple's node exists only in g0, an inserted one only in g1.
	seeds0 := make(map[graph.NodeID]bool)
	seeds1 := make(map[graph.NodeID]bool)
	addRef := func(ref relational.NodeRef) {
		if id, ok := nm0.Node(ref.Table, ref.PK); ok {
			seeds0[id] = true
		}
		if id, ok := nm1.Node(ref.Table, ref.PK); ok {
			seeds1[id] = true
		}
	}
	for _, c := range changes {
		addRef(c.Ref)
		for _, tgt := range c.Targets {
			addRef(tgt)
		}
	}
	bs.Seeds = len(seeds0) + len(seeds1)

	// Dirty terms: one bounded multi-source forward Dijkstra per
	// generation. A term t is affected only if some seed reaches a
	// node carrying t within R (the radius-bounded argument in
	// DESIGN.md), and the settled set of a forward run from C is
	// exactly {v : d(C→v) ≤ R} — every term on those nodes is dirty,
	// keyed by word because term IDs are not stable across
	// generations.
	dirty := make(map[string]bool)
	sortedIDs := func(seeds map[graph.NodeID]bool) []graph.NodeID {
		ids := make([]graph.NodeID, 0, len(seeds))
		for id := range seeds {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	}
	collect := func(g *graph.Graph, seeds map[graph.NodeID]bool) {
		if len(seeds) == 0 {
			return
		}
		ws := sssp.NewWorkspace(g)
		res := sssp.NewResult(g.NumNodes())
		ws.RunFromNodes(sssp.Forward, sortedIDs(seeds), m.opt.R, res)
		for _, v := range res.Visited() {
			for _, tid := range g.Terms(v) {
				dirty[g.Dict().Word(tid)] = true
			}
		}
	}
	dtEnd := opt.Stages.Timer("dirty_terms")
	collect(g0, seeds0)
	collect(g1, seeds1)
	dtEnd()

	// The changed region: every node that can still (or could
	// previously) reach a changed tuple within R — one bounded reverse
	// Dijkstra per generation, mirrored onto new IDs. Outside it no
	// distance, settled-set membership, or edge weight the index
	// depends on can have changed, which is what lets RebuildPartial
	// repair dirty terms locally instead of recomputing their balls.
	region := make([]bool, g1.NumNodes())
	mark := func(g *graph.Graph, seeds map[graph.NodeID]bool, toNew []graph.NodeID) {
		if len(seeds) == 0 {
			return
		}
		ws := sssp.NewWorkspace(g)
		res := sssp.NewResult(g.NumNodes())
		ws.RunFromNodes(sssp.Reverse, sortedIDs(seeds), m.opt.R, res)
		for _, v := range res.Visited() {
			nv := v
			if toNew != nil {
				if nv = toNew[v]; nv < 0 {
					continue
				}
			}
			region[nv] = true
		}
	}
	rmEnd := opt.Stages.Timer("region_mark")
	mark(g0, seeds0, perm)
	mark(g1, seeds1, nil)
	rmEnd()

	ix1, pst, err := index.RebuildPartial(g1, opt, ix0, perm, dirty, region)
	if err != nil {
		m.stats.PartialFallbacks++
		m.logln("delta: partial rebuild fell back to full build: %v", err)
		return nil
	}
	bs.DirtyTerms = pst.DirtyTerms
	bs.TotalTerms = pst.TotalTerms
	bs.RecomputedTerms = pst.RecomputedTerms
	bs.PatchedTerms = pst.PatchedTerms
	bs.RemappedTerms = pst.RemappedTerms
	return ix1
}

// finish folds one batch into the cumulative stats.
func (m *Maintainer) finish(bs *BatchStats, start time.Time) {
	bs.ApplyMS = msSince(start)
	m.stats.Batches++
	m.stats.Ops += int64(bs.Ops)
	m.stats.Rejected += int64(bs.Rejected)
	for k, n := range bs.ByKind {
		m.stats.Applied[k] += int64(n)
	}
	if bs.FullRebuild {
		m.stats.FullRebuilds++
	}
	for k, v := range bs.Stages {
		m.stats.StageTotalsMS[k] += v
	}
	c := *bs
	m.stats.LastBatch = &c
	if m.logf != nil && bs.Changed {
		m.logf("delta: batch applied: %d ops (%d rejected), %d/%d terms dirty, full=%v, %.1fms",
			bs.Ops, bs.Rejected, bs.DirtyTerms, bs.TotalTerms, bs.FullRebuild, bs.ApplyMS)
	}
}

func (m *Maintainer) logln(format string, args ...any) {
	if m.logf != nil {
		m.logf(format, args...)
	}
}

// NotePublish records that the caller published the current artifacts
// (took d to serialize and rename), for republish-cadence stats.
func (m *Maintainer) NotePublish(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Republishes++
	m.stats.LastPublishMS = float64(d) / float64(time.Millisecond)
	m.stats.StageTotalsMS["publish"] += float64(d) / float64(time.Millisecond)
}

// Graph returns the current graph generation.
func (m *Maintainer) Graph() *graph.Graph {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.g
}

// Index returns the current index generation.
func (m *Maintainer) Index() *index.Index {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ix
}

// R reports the maintained index radius.
func (m *Maintainer) R() float64 { return m.opt.R }

// WriteGraphTo serializes the current graph artifact.
func (m *Maintainer) WriteGraphTo(w io.Writer) error {
	return graph.Write(w, m.Graph())
}

// WriteIndexTo serializes the current index artifact — byte-identical
// to what cmd/indexbuild would write for the same database state.
func (m *Maintainer) WriteIndexTo(w io.Writer) error {
	return m.Index().Write(w)
}

// Footprint returns the exact accounting tree for the maintainer's
// current artifacts: the live graph generation and index (invertedN,
// invertedE, and the KeepDistances repair sidecar). The relational
// store itself is not counted — it is the maintained input, not a
// serving structure.
func (m *Maintainer) Footprint() prof.Footprint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return prof.Group("maintainer", m.g.Footprint(), m.ix.Footprint())
}

// Stats returns a copy of the cumulative stats.
func (m *Maintainer) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Applied = make(map[string]int64, len(m.stats.Applied))
	for k, v := range m.stats.Applied {
		s.Applied[k] = v
	}
	s.StageTotalsMS = make(map[string]float64, len(m.stats.StageTotalsMS))
	for k, v := range m.stats.StageTotalsMS {
		s.StageTotalsMS[k] = v
	}
	if m.stats.LastBatch != nil {
		lb := *m.stats.LastBatch
		s.LastBatch = &lb
	}
	return s
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
