package delta_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"commdb/internal/datagen"
	"commdb/internal/delta"
	"commdb/internal/relational"
)

func smallDB(t *testing.T) *relational.Database {
	t.Helper()
	db, err := datagen.GenerateDBLP(datagen.DBLPParams{Authors: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// A database dumped as a log and replayed must serialize to the same
// dump — the round trip that makes "base database" and "log prefix"
// the same thing.
func TestDumpLoadRoundTrip(t *testing.T) {
	db := smallDB(t)
	var a bytes.Buffer
	if err := delta.DumpDatabase(&a, db); err != nil {
		t.Fatal(err)
	}
	db2, err := delta.LoadDatabase(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := delta.DumpDatabase(&b, db2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("dump → load → dump is not a fixed point")
	}
	if db.NumTuples() != db2.NumTuples() {
		t.Fatalf("tuples: %d vs %d", db.NumTuples(), db2.NumTuples())
	}
}

func TestOpEncodeDecode(t *testing.T) {
	ops := []delta.Op{
		{Kind: delta.KindSchema, Table: "T", PK: []string{"A"},
			Columns: []delta.ColumnDef{{Name: "A", Type: "int"}, {Name: "B", Type: "string", FullText: true}}},
		{Kind: delta.KindFK, Table: "U", Column: "A", To: "T"},
		delta.InsertOp("T", []relational.Value{relational.IntV(-42), relational.StrV("hello world")}),
		delta.DeleteOp("T", "-42"),
	}
	for _, op := range ops {
		line, err := delta.EncodeOp(op)
		if err != nil {
			t.Fatal(err)
		}
		got, err := delta.DecodeOp(line)
		if err != nil {
			t.Fatalf("decode %s: %v", line, err)
		}
		re, err := delta.EncodeOp(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(line, re) {
			t.Fatalf("encode/decode/encode changed %s into %s", line, re)
		}
	}
	for _, bad := range []string{
		`{"op":"drop","table":"T"}`,
		`{"op":"insert"}`,
		`{"op":"insert","table":"T","bogus":1}`,
		`{not json`,
	} {
		if _, err := delta.DecodeOp([]byte(bad)); err == nil {
			t.Fatalf("decoding %q should fail", bad)
		}
	}
}

// ReadOps must tolerate a torn final line (no newline) and Tail must
// leave it unconsumed until it completes.
func TestTornWriteTolerance(t *testing.T) {
	full := `{"op":"insert","table":"T","values":[1,"x"]}` + "\n"
	torn := full + `{"op":"insert","table":"T","val`
	ops, err := delta.ReadOps(strings.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 {
		t.Fatalf("read %d ops from torn log, want 1", len(ops))
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "muts.ndjson")
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	tail := delta.NewTail(path, 0)
	got, err := tail.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("tail read %d ops, want 1", len(got))
	}
	// Complete the torn line; the tail must pick up exactly it.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`ues":[2,"y"]}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = tail.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Values[0] != json.Number("2") {
		t.Fatalf("tail after completion = %+v, want the completed op", got)
	}
	// Quiet log: no ops, no error.
	if got, err := tail.Poll(); err != nil || len(got) != 0 {
		t.Fatalf("quiet poll = %v ops, err %v", len(got), err)
	}
	// A truncated log is a permanent error.
	if err := os.WriteFile(path, []byte(full), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tail.Poll(); err == nil {
		t.Fatal("tail of a shrunk log should fail")
	}
}

// LogWriter appends durably and Tail consumes across multiple appends.
func TestLogWriterTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.ndjson")
	w, err := delta.OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tail := delta.NewTail(path, 0)
	total := 0
	for i := 0; i < 3; i++ {
		if err := w.Append(
			delta.InsertOp("T", []relational.Value{relational.IntV(int64(i))}),
			delta.DeleteOp("T", "0"),
		); err != nil {
			t.Fatal(err)
		}
		ops, err := tail.Poll()
		if err != nil {
			t.Fatal(err)
		}
		total += len(ops)
	}
	if total != 6 {
		t.Fatalf("tailed %d ops, want 6", total)
	}
}

// Rejected ops must not corrupt the maintainer: they are counted,
// mutate nothing, and the artifacts still match a full rebuild.
func TestMaintainerRejectsBadOps(t *testing.T) {
	db := smallDB(t)
	m, err := delta.NewMaintainer(db, delta.Config{R: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := m.Apply([]delta.Op{
		delta.DeleteOp("Author", "999999"),                            // no such row
		delta.DeleteOp("Nope", "1"),                                   // no such table
		{Kind: delta.KindInsert, Table: "Author", Values: []any{"x"}}, // arity
	})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Rejected != 3 || bs.Changed {
		t.Fatalf("batch stats = %+v, want 3 rejected, unchanged", bs)
	}
	st := m.Stats()
	if st.Rejected != 3 || st.Batches != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Structural ops take the full-rebuild path and still produce correct
// artifacts.
func TestMaintainerStructuralFullRebuild(t *testing.T) {
	db := smallDB(t)
	m, err := delta.NewMaintainer(db, delta.Config{R: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := m.Apply([]delta.Op{
		{Kind: delta.KindSchema, Table: "Venue", PK: []string{"Vid"},
			Columns: []delta.ColumnDef{{Name: "Vid", Type: "int"}, {Name: "Name", Type: "string", FullText: true}}},
		delta.InsertOp("Venue", []relational.Value{relational.IntV(1), relational.StrV("icde")}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bs.FullRebuild || !bs.Structural {
		t.Fatalf("structural batch stats = %+v, want full rebuild", bs)
	}
	if m.Stats().FullRebuilds != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}
