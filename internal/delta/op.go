// Package delta is the build half of live updates: a durable,
// replayable mutation log over internal/relational plus an incremental
// maintainer that turns each batch of tuple inserts/deletes into fresh
// graph and index artifacts, bit-identical to a from-scratch rebuild
// but recomputing only the radius-bounded dirty slice of invertedE.
//
// The log is NDJSON, one op per line, in four kinds:
//
//	{"op":"schema","table":"Author","columns":[{"name":"Aid","type":"int"},
//	   {"name":"Name","type":"string","fulltext":true}],"pk":["Aid"]}
//	{"op":"fk","table":"Write","column":"Aid","to":"Author"}
//	{"op":"insert","table":"Author","values":[7,"jane doe"]}
//	{"op":"delete","table":"Write","key":"7|1234"}
//
// A complete database dump is simply a log prefix of schema, fk, and
// insert ops — so "load the base database" and "replay the mutation
// log" are the same operation, and replaying any prefix of a stream
// reconstructs the exact database state at that point. Delete ops
// address rows by the same pipe-joined primary-key serialization the
// tables index on.
package delta

import (
	"bytes"
	"encoding/json"
	"fmt"

	"commdb/internal/relational"
)

// Op kinds.
const (
	KindSchema = "schema"
	KindFK     = "fk"
	KindInsert = "insert"
	KindDelete = "delete"
)

// Kinds lists every op kind in a fixed order, so metric exporters can
// emit deterministic label series (including zero-valued ones).
var Kinds = []string{KindSchema, KindFK, KindInsert, KindDelete}

// ColumnDef mirrors relational.Column for the wire format.
type ColumnDef struct {
	Name     string `json:"name"`
	Type     string `json:"type"` // "int" or "string"
	FullText bool   `json:"fulltext,omitempty"`
}

// Op is one mutation-log record.
type Op struct {
	Kind  string `json:"op"`
	Table string `json:"table"`

	// schema
	Columns []ColumnDef `json:"columns,omitempty"`
	PK      []string    `json:"pk,omitempty"`

	// fk: Table.Column references To's primary key
	Column string `json:"column,omitempty"`
	To     string `json:"to,omitempty"`

	// insert: values in schema column order (numbers for int columns,
	// strings for string columns)
	Values []any `json:"values,omitempty"`

	// delete: serialized primary key
	Key string `json:"key,omitempty"`
}

// Structural reports whether the op changes the schema rather than the
// data. The maintainer handles structural ops with a full rebuild —
// they are rare (normally only a dump's prefix) and a new table or
// constraint invalidates the incremental path's node-order reasoning.
func (op Op) Structural() bool { return op.Kind == KindSchema || op.Kind == KindFK }

// DecodeOp parses one NDJSON line. Numbers decode as json.Number so
// int64 values round-trip exactly.
func DecodeOp(line []byte) (Op, error) {
	var op Op
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	if err := dec.Decode(&op); err != nil {
		return op, fmt.Errorf("delta: bad op %q: %w", truncate(line), err)
	}
	switch op.Kind {
	case KindSchema, KindFK, KindInsert, KindDelete:
	default:
		return op, fmt.Errorf("delta: unknown op kind %q", op.Kind)
	}
	if op.Table == "" {
		return op, fmt.Errorf("delta: op %q needs a table", op.Kind)
	}
	return op, nil
}

// EncodeOp renders one op as a single NDJSON line (no trailing
// newline).
func EncodeOp(op Op) ([]byte, error) {
	return json.Marshal(op)
}

func truncate(b []byte) string {
	const max = 120
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

// Apply executes one op against the database. The database must be
// mutable (EnableMutations) so inserts and deletes keep reference
// counts and change capture consistent; a violated constraint —
// dangling foreign key, duplicate key, still-referenced delete —
// fails the op without applying it.
func Apply(db *relational.Database, op Op) error {
	switch op.Kind {
	case KindSchema:
		s := relational.Schema{Name: op.Table, PrimaryKey: op.PK}
		for _, c := range op.Columns {
			var ct relational.ColumnType
			switch c.Type {
			case "int":
				ct = relational.Int
			case "string":
				ct = relational.String
			default:
				return fmt.Errorf("delta: schema %s: unknown column type %q", op.Table, c.Type)
			}
			s.Columns = append(s.Columns, relational.Column{Name: c.Name, Type: ct, FullText: c.FullText})
		}
		_, err := db.CreateTable(s)
		return err
	case KindFK:
		return db.AddForeignKey(relational.ForeignKey{
			FromTable: op.Table, FromColumn: op.Column, ToTable: op.To,
		})
	case KindInsert:
		t, ok := db.Table(op.Table)
		if !ok {
			return fmt.Errorf("delta: insert into unknown table %s", op.Table)
		}
		cols := t.Schema().Columns
		if len(op.Values) != len(cols) {
			return fmt.Errorf("delta: insert %s: %d values for %d columns", op.Table, len(op.Values), len(cols))
		}
		vals := make([]relational.Value, len(cols))
		for i, raw := range op.Values {
			v, err := decodeValue(raw, cols[i].Type)
			if err != nil {
				return fmt.Errorf("delta: insert %s.%s: %w", op.Table, cols[i].Name, err)
			}
			vals[i] = v
		}
		return db.Insert(op.Table, vals...)
	case KindDelete:
		return db.Delete(op.Table, op.Key)
	default:
		return fmt.Errorf("delta: unknown op kind %q", op.Kind)
	}
}

// decodeValue converts a decoded JSON value to the column's type.
func decodeValue(raw any, ct relational.ColumnType) (relational.Value, error) {
	switch ct {
	case relational.Int:
		num, ok := raw.(json.Number)
		if !ok {
			return relational.Value{}, fmt.Errorf("want number, got %T", raw)
		}
		i, err := num.Int64()
		if err != nil {
			return relational.Value{}, err
		}
		return relational.IntV(i), nil
	case relational.String:
		s, ok := raw.(string)
		if !ok {
			return relational.Value{}, fmt.Errorf("want string, got %T", raw)
		}
		return relational.StrV(s), nil
	}
	return relational.Value{}, fmt.Errorf("unknown column type %d", ct)
}

// InsertOp builds an insert op from a typed row.
func InsertOp(table string, row []relational.Value) Op {
	vals := make([]any, len(row))
	for i, v := range row {
		vals[i] = valueJSON(v)
	}
	return Op{Kind: KindInsert, Table: table, Values: vals}
}

// DeleteOp builds a delete op for a serialized primary key.
func DeleteOp(table, key string) Op {
	return Op{Kind: KindDelete, Table: table, Key: key}
}

// valueJSON renders a relational value as its JSON form. Int columns
// become json.Number so encoding matches decoding exactly.
func valueJSON(v relational.Value) any {
	if v.Kind() == relational.Int {
		return json.Number(v.String())
	}
	return v.Str()
}
