package delta

import (
	"context"
	"time"
)

// FollowOptions tunes the tail-apply-publish loop.
type FollowOptions struct {
	// Debounce is how long the follower waits for a burst of appends
	// to go quiet before applying the accumulated batch — the
	// republish cadence knob. Defaults to 500ms.
	Debounce time.Duration
	// Poll is the file-polling interval. Defaults to Debounce/4,
	// clamped to [25ms, 250ms].
	Poll time.Duration
}

func (o *FollowOptions) defaults() {
	if o.Debounce <= 0 {
		o.Debounce = 500 * time.Millisecond
	}
	if o.Poll <= 0 {
		o.Poll = o.Debounce / 4
		if o.Poll < 25*time.Millisecond {
			o.Poll = 25 * time.Millisecond
		}
		if o.Poll > 250*time.Millisecond {
			o.Poll = 250 * time.Millisecond
		}
	}
}

// Follow tails a mutation log until ctx is done: newly appended
// complete ops are accumulated until the log goes quiet for the
// debounce interval, then applied as one batch; after every batch that
// changed the artifacts, publish runs (republish the files, reload the
// serving snapshot, ...) and its duration is recorded. Publish errors
// are logged and the loop continues — the next batch will publish the
// newer state anyway. Returns nil on context cancellation; a tail read
// error (e.g. a truncated log) is permanent and returned.
func (m *Maintainer) Follow(ctx context.Context, tail *Tail, opts FollowOptions, publish func(BatchStats) error) error {
	opts.defaults()
	timer := time.NewTimer(opts.Poll)
	defer timer.Stop()
	var batch []Op
	var quietSince time.Time

	for {
		ops, err := tail.Poll()
		if err != nil {
			return err
		}
		if len(ops) > 0 {
			batch = append(batch, ops...)
			quietSince = time.Now()
		}
		if len(batch) > 0 && time.Since(quietSince) >= opts.Debounce {
			bs, err := m.Apply(batch)
			if err != nil {
				return err
			}
			batch = nil
			if bs.Changed && publish != nil {
				pubStart := time.Now()
				if err := publish(bs); err != nil {
					m.logln("delta: publish failed (will retry on next batch): %v", err)
				} else {
					m.NotePublish(time.Since(pubStart))
				}
			}
		}
		timer.Reset(opts.Poll)
		select {
		case <-ctx.Done():
			return nil
		case <-timer.C:
		}
	}
}
