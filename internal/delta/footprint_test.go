package delta_test

import (
	"testing"

	"commdb/internal/delta"
	"commdb/internal/prof"
	"commdb/internal/relational"
)

// sumParts asserts the accounting invariant recursively: a composite
// footprint's bytes equal the sum of its parts' bytes.
func sumParts(t *testing.T, f prof.Footprint) {
	t.Helper()
	if len(f.Parts) == 0 {
		return
	}
	var sum int64
	for _, p := range f.Parts {
		sum += p.Bytes
		sumParts(t, p)
	}
	if f.Bytes != sum {
		t.Fatalf("%s: bytes %d != sum of parts %d", f.Name, f.Bytes, sum)
	}
}

// The maintainer's footprint tracks its artifacts across batches: an
// insert-only batch grows it, deleting the same rows shrinks it again
// (not necessarily to the starting value — the term dictionary retains
// interned words by design).
func TestMaintainerFootprintGrowsAndShrinks(t *testing.T) {
	db := smallDB(t)
	m, err := delta.NewMaintainer(db, delta.Config{R: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Warmup batch: the initial Build's posting lists carry append-grown
	// capacity slack, and the first partial rebuild re-makes them at
	// exact capacity. Footprints count retained capacity (that is what
	// the process actually holds), so normalize into the rebuild regime
	// before comparing growth.
	if _, err := m.Apply([]delta.Op{
		delta.InsertOp("Author", []relational.Value{relational.IntV(899999), relational.StrV("warmup probe")}),
		delta.DeleteOp("Author", relational.IntV(899999).String()),
	}); err != nil {
		t.Fatal(err)
	}

	base := m.Footprint()
	sumParts(t, base)
	if base.Name != "maintainer" || base.Bytes <= 0 {
		t.Fatalf("base footprint = %+v", base)
	}
	if _, ok := base.Find("graph"); !ok {
		t.Fatal("maintainer footprint missing graph part")
	}
	if _, ok := base.Find("invertedE"); !ok {
		t.Fatal("maintainer footprint missing invertedE part")
	}
	if _, ok := base.Find("dist_sidecar"); !ok {
		t.Fatal("maintainer keeps distances; sidecar part missing")
	}

	var ins []delta.Op
	for i := 0; i < 8; i++ {
		ins = append(ins, delta.InsertOp("Author", []relational.Value{
			relational.IntV(900000 + int64(i)), relational.StrV("zzgrowth footprint probe author")}))
	}
	bs, err := m.Apply(ins)
	if err != nil {
		t.Fatal(err)
	}
	if !bs.Changed || bs.Rejected != 0 {
		t.Fatalf("insert batch = %+v", bs)
	}
	grown := m.Footprint()
	sumParts(t, grown)
	if grown.Bytes <= base.Bytes {
		t.Fatalf("footprint did not grow: %d -> %d", base.Bytes, grown.Bytes)
	}

	var del []delta.Op
	for i := 0; i < 8; i++ {
		del = append(del, delta.DeleteOp("Author", relational.IntV(900000+int64(i)).String()))
	}
	if _, err := m.Apply(del); err != nil {
		t.Fatal(err)
	}
	shrunk := m.Footprint()
	sumParts(t, shrunk)
	if shrunk.Bytes >= grown.Bytes {
		t.Fatalf("footprint did not shrink: %d -> %d", grown.Bytes, shrunk.Bytes)
	}
}

// Every changed batch reports a stage breakdown, and the cumulative
// totals fold batches together (publish included via NotePublish).
func TestBatchStageBreakdown(t *testing.T) {
	db := smallDB(t)
	m, err := delta.NewMaintainer(db, delta.Config{R: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := m.Apply([]delta.Op{delta.InsertOp("Author", []relational.Value{
		relational.IntV(900100), relational.StrV("stage probe author")})})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Stages == nil {
		t.Fatal("changed batch has no stage breakdown")
	}
	for _, want := range []string{"to_graph", "dirty_terms", "region_mark", "fulltext", "remap"} {
		if _, ok := bs.Stages[want]; !ok {
			t.Errorf("stage %q missing from %v", want, bs.Stages)
		}
	}
	if bs.FullRebuild {
		t.Fatalf("small insert took the full-rebuild path: %+v", bs)
	}

	m.NotePublish(1500000) // 1.5ms in time.Duration units
	st := m.Stats()
	if len(st.StageTotalsMS) == 0 {
		t.Fatal("cumulative stage totals empty")
	}
	if st.StageTotalsMS["to_graph"] <= 0 {
		t.Fatalf("to_graph total = %v", st.StageTotalsMS["to_graph"])
	}
	if st.StageTotalsMS["publish"] != 1.5 {
		t.Fatalf("publish total = %v, want 1.5", st.StageTotalsMS["publish"])
	}

	// The snapshot is a deep copy: mutating it must not leak back.
	st.StageTotalsMS["to_graph"] = -1
	if m.Stats().StageTotalsMS["to_graph"] <= 0 {
		t.Fatal("Stats() stage totals are not a deep copy")
	}
}
