package delta_test

// The equivalence golden suite: replaying any prefix of a mutation
// stream through the incremental maintainer must yield graph and v2
// index artifacts byte-identical to a from-scratch rebuild of that
// prefix. This is the property that makes the delta path safe to serve
// from — an artifact produced by N delta batches is indistinguishable
// from one produced by cmd/indexbuild on the same database state, so
// the fail-closed loaders, golden files, and probation logic of the
// serving path apply unchanged. Run under -race in CI.

import (
	"bytes"
	"fmt"
	"testing"

	"commdb/internal/datagen"
	"commdb/internal/delta"
	"commdb/internal/graph"
	"commdb/internal/index"
	"commdb/internal/relational"
)

// goldenCase is one dataset + stream configuration.
type goldenCase struct {
	name    string
	fresh   func(t *testing.T) *relational.Database
	nOps    int
	opsSeed int64
	r       float64
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name: "dblp",
			fresh: func(t *testing.T) *relational.Database {
				db, err := datagen.GenerateDBLP(datagen.DBLPParams{Authors: 60, Seed: 9})
				if err != nil {
					t.Fatal(err)
				}
				return db
			},
			nOps: 90, opsSeed: 17, r: 4,
		},
		{
			name: "imdb",
			fresh: func(t *testing.T) *relational.Database {
				db, err := datagen.GenerateIMDB(datagen.IMDBParams{Users: 40, AvgRatingsPerUser: 6, Seed: 9})
				if err != nil {
					t.Fatal(err)
				}
				return db
			},
			nOps: 70, opsSeed: 23, r: 6,
		},
	}
}

// chunkSizes carves a stream into batches of varied sizes, including
// single-op batches, so prefix boundaries land at awkward places.
func chunkSizes(n int) []int {
	sizes := []int{1, 2, 5, 1, 9, 3, 14, 1, 6, 20}
	var out []int
	total := 0
	for i := 0; total < n; i++ {
		s := sizes[i%len(sizes)]
		if total+s > n {
			s = n - total
		}
		out = append(out, s)
		total += s
	}
	return out
}

func TestGoldenPrefixEquivalence(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			// Generate the stream against one copy of the dataset…
			gen := tc.fresh(t)
			ops, err := datagen.Mutations(gen, datagen.MutationParams{N: tc.nOps, Seed: tc.opsSeed})
			if err != nil {
				t.Fatal(err)
			}
			// …and maintain a second, identical copy incrementally.
			m, err := delta.NewMaintainer(tc.fresh(t), delta.Config{R: tc.r, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}

			prefix := 0
			sawPartial := false
			sawPatch := false
			for bi, size := range chunkSizes(len(ops)) {
				batch := ops[prefix : prefix+size]
				bs, err := m.Apply(batch)
				if err != nil {
					t.Fatalf("batch %d: %v", bi, err)
				}
				prefix += size
				if bs.Changed && !bs.FullRebuild && bs.DirtyTerms < bs.TotalTerms {
					sawPartial = true
				}
				if bs.PatchedTerms > 0 {
					sawPatch = true
				}

				// Reference: replay the same prefix into a fresh database
				// and build everything from scratch.
				ref := tc.fresh(t)
				if err := ref.EnableMutations(); err != nil {
					t.Fatal(err)
				}
				for i, op := range ops[:prefix] {
					if err := delta.Apply(ref, op); err != nil {
						t.Fatalf("reference replay op %d: %v", i, err)
					}
				}
				gRef, _, err := ref.ToGraph()
				if err != nil {
					t.Fatal(err)
				}
				ixRef, err := index.Build(gRef, index.BuildOptions{R: tc.r, Workers: 2})
				if err != nil {
					t.Fatal(err)
				}

				if err := compareArtifacts(m, gRef, ixRef); err != nil {
					t.Fatalf("prefix %d (batch %d, %d ops): %v", prefix, bi, size, err)
				}
			}

			st := m.Stats()
			if st.PartialFallbacks != 0 {
				t.Fatalf("%d partial fallbacks — the dirty-set invariants were violated", st.PartialFallbacks)
			}
			if st.FullRebuilds != 0 {
				t.Fatalf("%d full rebuilds on a data-only stream", st.FullRebuilds)
			}
			if !sawPartial {
				t.Fatal("no batch exercised the bounded delta path (dirty < total)")
			}
			// The repair path must actually engage, not silently fall back
			// to recomputing every dirty term (it does so per term when a
			// boundary condition is missing — an always-recompute bug
			// would still pass the byte-identity checks above).
			if !sawPatch {
				t.Fatal("no batch patched any term — the boundary-conditioned repair path never engaged")
			}
		})
	}
}

// compareArtifacts asserts byte-identity of the maintainer's current
// graph and index artifacts against the reference pair.
func compareArtifacts(m *delta.Maintainer, gRef *graph.Graph, ixRef *index.Index) error {
	var gm, gr bytes.Buffer
	if err := m.WriteGraphTo(&gm); err != nil {
		return err
	}
	if err := graph.Write(&gr, gRef); err != nil {
		return err
	}
	if !bytes.Equal(gm.Bytes(), gr.Bytes()) {
		return fmt.Errorf("graph artifact differs from full rebuild (%d vs %d bytes)", gm.Len(), gr.Len())
	}
	var xm, xr bytes.Buffer
	if err := m.WriteIndexTo(&xm); err != nil {
		return err
	}
	if err := ixRef.Write(&xr); err != nil {
		return err
	}
	if !bytes.Equal(xm.Bytes(), xr.Bytes()) {
		return fmt.Errorf("index artifact differs from full rebuild (%d vs %d bytes)", xm.Len(), xr.Len())
	}
	// Belt and braces: the maintainer's artifact must load through the
	// fail-closed v2 reader against the reference graph.
	if _, err := index.ReadInto(bytes.NewReader(xm.Bytes()), gRef); err != nil {
		return fmt.Errorf("maintainer artifact rejected by fail-closed loader: %v", err)
	}
	return nil
}
