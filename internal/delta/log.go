package delta

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"

	"commdb/internal/relational"
)

// Log durability and replay. A mutation log is append-only NDJSON; the
// writer fsyncs on every Append so an acknowledged batch survives a
// crash, and readers treat a final line without a newline as a torn
// write: Replay stops cleanly before it, and Tail waits for the rest
// of the line to arrive — the same either-old-or-new discipline the
// index artifacts get from atomic renames.

// LogWriter appends ops to a mutation-log file durably.
type LogWriter struct {
	f *os.File
}

// OpenLog opens (creating if needed) a mutation log for appending.
func OpenLog(path string) (*LogWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &LogWriter{f: f}, nil
}

// Append writes the ops as NDJSON lines and fsyncs. The batch is
// written with a single Write call per op; on return the ops are
// durable.
func (w *LogWriter) Append(ops ...Op) error {
	var buf bytes.Buffer
	for _, op := range ops {
		line, err := EncodeOp(op)
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if _, err := w.f.Write(buf.Bytes()); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close closes the underlying file.
func (w *LogWriter) Close() error { return w.f.Close() }

// WriteOps streams ops as NDJSON to any writer (no fsync; use
// LogWriter for durable appends).
func WriteOps(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		line, err := EncodeOp(op)
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadOps decodes every complete NDJSON line of r. A final unterminated
// line is a torn write and is ignored; everything before it must parse.
func ReadOps(r io.Reader) ([]Op, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var ops []Op
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			return ops, nil // no trailing newline: torn tail, stop cleanly
		}
		if err != nil {
			return nil, err
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		op, err := DecodeOp(line)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
}

// Replay applies every op of r to db in order, returning how many ops
// were applied. The database must already be mutable.
func Replay(r io.Reader, db *relational.Database) (int, error) {
	ops, err := ReadOps(r)
	if err != nil {
		return 0, err
	}
	for i, op := range ops {
		if err := Apply(db, op); err != nil {
			return i, fmt.Errorf("delta: replay op %d: %w", i, err)
		}
	}
	return len(ops), nil
}

// DumpDatabase serializes the database as a replayable log prefix:
// schema ops, fk ops, then every row as an insert op, tables in
// creation order. LoadDatabase(DumpDatabase(db)) reconstructs an
// identical database.
func DumpDatabase(w io.Writer, db *relational.Database) error {
	var ops []Op
	for _, name := range db.Tables() {
		t, _ := db.Table(name)
		s := t.Schema()
		op := Op{Kind: KindSchema, Table: name, PK: s.PrimaryKey}
		for _, c := range s.Columns {
			typ := "int"
			if c.Type == relational.String {
				typ = "string"
			}
			op.Columns = append(op.Columns, ColumnDef{Name: c.Name, Type: typ, FullText: c.FullText})
		}
		ops = append(ops, op)
	}
	for _, fk := range db.ForeignKeys() {
		ops = append(ops, Op{Kind: KindFK, Table: fk.FromTable, Column: fk.FromColumn, To: fk.ToTable})
	}
	for _, name := range db.Tables() {
		t, _ := db.Table(name)
		for i := 0; i < t.Len(); i++ {
			ops = append(ops, InsertOp(name, t.Row(i)))
		}
	}
	return WriteOps(w, ops)
}

// LoadDatabase replays a database dump (or any log) from r into a
// fresh mutable database.
func LoadDatabase(r io.Reader) (*relational.Database, error) {
	db := relational.NewDatabase()
	if err := db.EnableMutations(); err != nil {
		return nil, err
	}
	if _, err := Replay(r, db); err != nil {
		return nil, err
	}
	db.ResetChanges() // the load is the base state, not a delta
	return db, nil
}

// Tail incrementally reads complete ops appended to a log file. Each
// Poll opens the file, seeks past everything already consumed, and
// returns the ops of the newly appended complete lines; a torn final
// line stays unconsumed until its newline arrives. A missing file is
// not an error — it simply has no ops yet.
type Tail struct {
	path string
	off  int64
}

// NewTail starts tailing path from the given offset (0 = the start).
func NewTail(path string, offset int64) *Tail {
	return &Tail{path: path, off: offset}
}

// Offset reports how far the tail has consumed.
func (t *Tail) Offset() int64 { return t.off }

// Poll returns newly appended complete ops, or nil when there are
// none.
func (t *Tail) Poll() ([]Op, error) {
	f, err := os.Open(t.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < t.off {
		return nil, fmt.Errorf("delta: log %s shrank from %d to %d bytes (truncated or rotated)", t.path, t.off, st.Size())
	}
	if st.Size() == t.off {
		return nil, nil
	}
	if _, err := f.Seek(t.off, io.SeekStart); err != nil {
		return nil, err
	}
	buf := make([]byte, st.Size()-t.off)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	// Only consume through the last newline; the remainder is a line
	// still being written.
	end := bytes.LastIndexByte(buf, '\n')
	if end < 0 {
		return nil, nil
	}
	ops, err := ReadOps(bytes.NewReader(buf[:end+1]))
	if err != nil {
		return nil, err
	}
	t.off += int64(end + 1)
	return ops, nil
}
