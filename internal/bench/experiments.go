package bench

import (
	"fmt"
	"time"
)

// sweepPoint is one x-axis position of a figure.
type sweepPoint struct {
	label string
	p     Params
}

func kwfPoints(cfg Config) []sweepPoint {
	out := make([]sweepPoint, 0, len(cfg.KWFs))
	for _, kwf := range cfg.KWFs {
		p := cfg.Defaults
		p.KWF = kwf
		out = append(out, sweepPoint{label: fmt.Sprintf("%.6g", kwf), p: p})
	}
	return out
}

func lPoints(cfg Config) []sweepPoint {
	out := make([]sweepPoint, 0, len(cfg.Ls))
	for _, l := range cfg.Ls {
		p := cfg.Defaults
		p.L = l
		out = append(out, sweepPoint{label: fmt.Sprintf("%d", l), p: p})
	}
	return out
}

func rmaxPoints(cfg Config) []sweepPoint {
	out := make([]sweepPoint, 0, len(cfg.Rmaxs))
	for _, r := range cfg.Rmaxs {
		p := cfg.Defaults
		p.Rmax = r
		out = append(out, sweepPoint{label: fmt.Sprintf("%g", r), p: p})
	}
	return out
}

func kPoints(cfg Config) []sweepPoint {
	out := make([]sweepPoint, 0, len(cfg.Ks))
	for _, k := range cfg.Ks {
		p := cfg.Defaults
		p.K = k
		out = append(out, sweepPoint{label: fmt.Sprintf("%d", k), p: p})
	}
	return out
}

const (
	msPerNs = 1e-6
	kb      = 1024.0
)

// allSeries sweeps a COMM-all comparison and extracts one metric:
// "delay" (average delay, ms) or "mem" (peak memory, KB).
func (d *Dataset) allSeries(id, title, xlabel, metric string, points []sweepPoint, maxResults int) (*Series, error) {
	ylabel := "avg delay ms"
	if metric == "mem" {
		ylabel = "peak KB"
	}
	s := &Series{ID: id, Title: title, XLabel: xlabel, YLabel: ylabel,
		Columns: []string{"PDall", "BUall", "TDall"}}
	for _, pt := range points {
		results, _, err := d.CompareAll(pt.p, maxResults)
		if err != nil {
			return nil, err
		}
		row := Row{X: pt.label, Values: make([]float64, len(results))}
		for i, r := range results {
			if metric == "mem" {
				row.Values[i] = float64(r.PeakBytes) / kb
			} else {
				row.Values[i] = float64(r.AvgDelay().Nanoseconds()) * msPerNs
			}
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// topkSeries sweeps a COMM-k comparison; the metric is total time (ms).
func (d *Dataset) topkSeries(id, title, xlabel string, points []sweepPoint) (*Series, error) {
	s := &Series{ID: id, Title: title, XLabel: xlabel, YLabel: "total ms",
		Columns: []string{"PDk", "BUk", "TDk"}}
	for _, pt := range points {
		results, _, err := d.CompareTopK(pt.p)
		if err != nil {
			return nil, err
		}
		row := Row{X: pt.label, Values: make([]float64, len(results))}
		for i, r := range results {
			row.Values[i] = float64(r.Total.Nanoseconds()) * msPerNs
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// interactiveSeries is Exp-3: total time to have k+50 results after
// initially asking for k.
func (d *Dataset) interactiveSeries(id, title string) (*Series, error) {
	s := &Series{ID: id, Title: title, XLabel: "initial k", YLabel: "total ms (k, then +50)",
		Columns: []string{"PDk", "BUk", "TDk"}}
	for _, pt := range kPoints(d.Config) {
		results, err := d.CompareInteractive(pt.p, 50)
		if err != nil {
			return nil, err
		}
		row := Row{X: pt.label, Values: make([]float64, len(results))}
		for i, r := range results {
			row.Values[i] = float64(r.Total.Nanoseconds()) * msPerNs
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID      string
	Title   string
	Dataset string // "dblp" or "imdb"
	Run     func(d *Dataset, maxResults int) (*Series, error)
}

// Experiments returns the full registry: every figure of Section VII.
func Experiments() []Experiment {
	return []Experiment{
		// Exp-1: IMDB, COMM-all (Fig. 9).
		{ID: "fig9a", Title: "IMDB COMM-all: average delay vs KWF", Dataset: "imdb",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.allSeries("fig9a", "IMDB COMM-all avg delay vs KWF", "KWF", "delay", kwfPoints(d.Config), mr)
			}},
		{ID: "fig9b", Title: "IMDB COMM-all: peak memory vs KWF", Dataset: "imdb",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.allSeries("fig9b", "IMDB COMM-all peak memory vs KWF", "KWF", "mem", kwfPoints(d.Config), mr)
			}},
		{ID: "fig9c", Title: "IMDB COMM-all: average delay vs l", Dataset: "imdb",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.allSeries("fig9c", "IMDB COMM-all avg delay vs l", "l", "delay", lPoints(d.Config), mr)
			}},
		{ID: "fig9d", Title: "IMDB COMM-all: peak memory vs l", Dataset: "imdb",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.allSeries("fig9d", "IMDB COMM-all peak memory vs l", "l", "mem", lPoints(d.Config), mr)
			}},
		{ID: "fig9e", Title: "IMDB COMM-all: average delay vs Rmax", Dataset: "imdb",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.allSeries("fig9e", "IMDB COMM-all avg delay vs Rmax", "Rmax", "delay", rmaxPoints(d.Config), mr)
			}},
		{ID: "fig9f", Title: "IMDB COMM-all: peak memory vs Rmax", Dataset: "imdb",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.allSeries("fig9f", "IMDB COMM-all peak memory vs Rmax", "Rmax", "mem", rmaxPoints(d.Config), mr)
			}},
		// Exp-1: IMDB, COMM-k (Fig. 10).
		{ID: "fig10a", Title: "IMDB COMM-k: total time vs KWF", Dataset: "imdb",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.topkSeries("fig10a", "IMDB COMM-k total time vs KWF", "KWF", kwfPoints(d.Config))
			}},
		{ID: "fig10b", Title: "IMDB COMM-k: total time vs l", Dataset: "imdb",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.topkSeries("fig10b", "IMDB COMM-k total time vs l", "l", lPoints(d.Config))
			}},
		{ID: "fig10c", Title: "IMDB COMM-k: total time vs Rmax", Dataset: "imdb",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.topkSeries("fig10c", "IMDB COMM-k total time vs Rmax", "Rmax", rmaxPoints(d.Config))
			}},
		{ID: "fig10d", Title: "IMDB COMM-k: total time vs k", Dataset: "imdb",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.topkSeries("fig10d", "IMDB COMM-k total time vs k", "k", kPoints(d.Config))
			}},
		// Exp-2: DBLP, COMM-all (Fig. 11).
		{ID: "fig11a", Title: "DBLP COMM-all: average delay vs KWF", Dataset: "dblp",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.allSeries("fig11a", "DBLP COMM-all avg delay vs KWF", "KWF", "delay", kwfPoints(d.Config), mr)
			}},
		{ID: "fig11b", Title: "DBLP COMM-all: peak memory vs KWF", Dataset: "dblp",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.allSeries("fig11b", "DBLP COMM-all peak memory vs KWF", "KWF", "mem", kwfPoints(d.Config), mr)
			}},
		{ID: "fig11c", Title: "DBLP COMM-all: average delay vs l", Dataset: "dblp",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.allSeries("fig11c", "DBLP COMM-all avg delay vs l", "l", "delay", lPoints(d.Config), mr)
			}},
		{ID: "fig11d", Title: "DBLP COMM-all: peak memory vs l", Dataset: "dblp",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.allSeries("fig11d", "DBLP COMM-all peak memory vs l", "l", "mem", lPoints(d.Config), mr)
			}},
		{ID: "fig11e", Title: "DBLP COMM-all: average delay vs Rmax", Dataset: "dblp",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.allSeries("fig11e", "DBLP COMM-all avg delay vs Rmax", "Rmax", "delay", rmaxPoints(d.Config), mr)
			}},
		{ID: "fig11f", Title: "DBLP COMM-all: peak memory vs Rmax", Dataset: "dblp",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.allSeries("fig11f", "DBLP COMM-all peak memory vs Rmax", "Rmax", "mem", rmaxPoints(d.Config), mr)
			}},
		// Exp-2: DBLP, COMM-k (Fig. 11's companion, "similar trends").
		{ID: "fig11k", Title: "DBLP COMM-k: total time vs k", Dataset: "dblp",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.topkSeries("fig11k", "DBLP COMM-k total time vs k", "k", kPoints(d.Config))
			}},
		// Exp-3: interactive top-k (Fig. 12).
		{ID: "fig12dblp", Title: "DBLP interactive top-k: k then +50", Dataset: "dblp",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.interactiveSeries("fig12dblp", "DBLP interactive top-k (k, then +50)")
			}},
		{ID: "fig12imdb", Title: "IMDB interactive top-k: k then +50", Dataset: "imdb",
			Run: func(d *Dataset, mr int) (*Series, error) {
				return d.interactiveSeries("fig12imdb", "IMDB interactive top-k (k, then +50)")
			}},
	}
}

// IndexReport reproduces the index statistics quoted in Section VII's
// text: build time, index size vs raw data size, and projected-graph
// ratios across the default sweep.
type IndexReport struct {
	Dataset       string
	BuildTime     time.Duration
	IndexBytes    int64
	RawBytes      int64
	GraphNodes    int
	GraphEdges    int
	MaxProjRatio  float64
	AvgProjRatio  float64
	ProjectedRuns int
}

// BuildIndexReport projects every KWF operating point at the default
// Rmax and summarizes the ratios.
func (d *Dataset) BuildIndexReport() (*IndexReport, error) {
	rep := &IndexReport{
		Dataset:    d.Name,
		BuildTime:  d.Ix.BuildTime(),
		IndexBytes: d.Ix.Bytes(),
		RawBytes:   rawBytes(d),
		GraphNodes: d.G.NumNodes(),
		GraphEdges: d.G.NumEdges(),
	}
	sum := 0.0
	for _, pt := range kwfPoints(d.Config) {
		keywords, err := d.Keywords(pt.p)
		if err != nil {
			return nil, err
		}
		proj, err := d.Ix.Project(keywords, pt.p.Rmax)
		if err != nil {
			return nil, err
		}
		if proj.Ratio > rep.MaxProjRatio {
			rep.MaxProjRatio = proj.Ratio
		}
		sum += proj.Ratio
		rep.ProjectedRuns++
	}
	if rep.ProjectedRuns > 0 {
		rep.AvgProjRatio = sum / float64(rep.ProjectedRuns)
	}
	return rep, nil
}

// rawBytes estimates the raw dataset size: the serialized tuple values.
func rawBytes(d *Dataset) int64 {
	var b int64
	for _, name := range d.DB.Tables() {
		t, _ := d.DB.Table(name)
		for r := 0; r < t.Len(); r++ {
			for _, v := range t.Row(r) {
				b += int64(len(v.String())) + 1
			}
		}
	}
	return b
}

// String renders the report.
func (r *IndexReport) String() string {
	return fmt.Sprintf(
		"%s: graph %d nodes / %d edges; index built in %v, %d KB (raw data %d KB); projection ratio max %.2f%% avg %.2f%% over %d queries",
		r.Dataset, r.GraphNodes, r.GraphEdges, r.BuildTime.Round(time.Millisecond),
		r.IndexBytes/1024, r.RawBytes/1024,
		r.MaxProjRatio*100, r.AvgProjRatio*100, r.ProjectedRuns)
}
