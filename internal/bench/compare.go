package bench

import (
	"fmt"
	"time"

	"commdb/internal/core"
	"commdb/internal/expand"
	"commdb/internal/index"
)

// AlgoResult is one algorithm's measurement at one operating point.
type AlgoResult struct {
	Algo string
	// Total is the wall-clock enumeration time.
	Total time.Duration
	// Results is the number of cores produced.
	Results int
	// PeakBytes is the algorithm's own peak logical memory (duplication
	// pools, keyword sets, heaps, engine state), excluding the shared
	// projected graph.
	PeakBytes int64
}

// AvgDelay is the paper's COMM-all metric: total CPU time divided by
// the number of results.
func (r AlgoResult) AvgDelay() time.Duration {
	if r.Results == 0 {
		return r.Total
	}
	return r.Total / time.Duration(r.Results)
}

// CompareAll runs PDall, BUall and TDall on the projected graph of one
// operating point, enumerating every community core (or up to
// maxResults when positive; the same cap applies to all three
// algorithms). It returns the per-algorithm measurements and the
// projection used.
func (d *Dataset) CompareAll(p Params, maxResults int) ([]AlgoResult, *index.Projection, error) {
	cacheKey := fmt.Sprintf("%+v|%d", p, maxResults)
	keywords, err := d.Keywords(p)
	if err != nil {
		return nil, nil, err
	}
	proj, err := d.Ix.Project(keywords, p.Rmax)
	if err != nil {
		return nil, nil, err
	}
	if d.sweepCache != nil {
		if cached, ok := d.sweepCache[cacheKey]; ok {
			return cached, proj, nil
		}
	}
	gp := proj.Sub.G

	// PDall (Algorithm 1).
	start := time.Now()
	eng, err := core.NewEngine(gp, nil, keywords, p.Rmax)
	if err != nil {
		return nil, nil, err
	}
	it := core.NewAll(eng)
	count := 0
	for {
		if _, ok := it.NextCore(); !ok {
			break
		}
		count++
		if maxResults > 0 && count >= maxResults {
			break
		}
	}
	pd := AlgoResult{
		Algo:      "PDall",
		Total:     time.Since(start),
		Results:   count,
		PeakBytes: eng.Bytes() + it.Bytes(),
	}

	opt := expand.Options{Graph: gp, Keywords: keywords, Rmax: p.Rmax, MaxResults: maxResults}
	start = time.Now()
	bu, err := expand.BUAll(opt)
	if err != nil {
		return nil, nil, err
	}
	buRes := AlgoResult{Algo: "BUall", Total: time.Since(start), Results: len(bu.Cores), PeakBytes: bu.PeakBytes}

	start = time.Now()
	td, err := expand.TDAll(opt)
	if err != nil {
		return nil, nil, err
	}
	tdRes := AlgoResult{Algo: "TDall", Total: time.Since(start), Results: len(td.Cores), PeakBytes: td.PeakBytes}

	out := []AlgoResult{pd, buRes, tdRes}
	if d.sweepCache != nil {
		d.sweepCache[cacheKey] = out
	}
	return out, proj, nil
}

// CompareTopK runs PDk, BUk and TDk for the operating point's k.
func (d *Dataset) CompareTopK(p Params) ([]AlgoResult, *index.Projection, error) {
	keywords, err := d.Keywords(p)
	if err != nil {
		return nil, nil, err
	}
	proj, err := d.Ix.Project(keywords, p.Rmax)
	if err != nil {
		return nil, nil, err
	}
	gp := proj.Sub.G

	start := time.Now()
	eng, err := core.NewEngine(gp, nil, keywords, p.Rmax)
	if err != nil {
		return nil, nil, err
	}
	it := core.NewTopK(eng)
	count := 0
	for count < p.K {
		if _, ok := it.NextCore(); !ok {
			break
		}
		count++
	}
	pd := AlgoResult{
		Algo:      "PDk",
		Total:     time.Since(start),
		Results:   count,
		PeakBytes: eng.Bytes() + it.Bytes(),
	}

	opt := expand.Options{Graph: gp, Keywords: keywords, Rmax: p.Rmax}
	start = time.Now()
	bu, err := expand.BUTopK(opt, p.K)
	if err != nil {
		return nil, nil, err
	}
	buRes := AlgoResult{Algo: "BUk", Total: time.Since(start), Results: len(bu.Cores), PeakBytes: bu.PeakBytes}

	start = time.Now()
	td, err := expand.TDTopK(opt, p.K)
	if err != nil {
		return nil, nil, err
	}
	tdRes := AlgoResult{Algo: "TDk", Total: time.Since(start), Results: len(td.Cores), PeakBytes: td.PeakBytes}

	return []AlgoResult{pd, buRes, tdRes}, proj, nil
}

// CompareInteractive is Exp-3: the user asks for the top k, then wants
// 50 more. PDk continues its enumerator; BUk and TDk must re-run the
// whole query with k+50. Returned results carry the total time to have
// k+50 answers in hand.
func (d *Dataset) CompareInteractive(p Params, extra int) ([]AlgoResult, error) {
	keywords, err := d.Keywords(p)
	if err != nil {
		return nil, err
	}
	proj, err := d.Ix.Project(keywords, p.Rmax)
	if err != nil {
		return nil, err
	}
	gp := proj.Sub.G

	// PDk: one enumerator serves both the initial k and the +extra.
	start := time.Now()
	eng, err := core.NewEngine(gp, nil, keywords, p.Rmax)
	if err != nil {
		return nil, err
	}
	it := core.NewTopK(eng)
	count := 0
	for count < p.K+extra {
		if _, ok := it.NextCore(); !ok {
			break
		}
		count++
	}
	pd := AlgoResult{Algo: "PDk", Total: time.Since(start), Results: count,
		PeakBytes: eng.Bytes() + it.Bytes()}

	// BUk/TDk: initial run at k plus a full re-run at k+extra.
	opt := expand.Options{Graph: gp, Keywords: keywords, Rmax: p.Rmax}
	start = time.Now()
	if _, err := expand.BUTopK(opt, p.K); err != nil {
		return nil, err
	}
	bu2, err := expand.BUTopK(opt, p.K+extra)
	if err != nil {
		return nil, err
	}
	buRes := AlgoResult{Algo: "BUk", Total: time.Since(start), Results: len(bu2.Cores), PeakBytes: bu2.PeakBytes}

	start = time.Now()
	if _, err := expand.TDTopK(opt, p.K); err != nil {
		return nil, err
	}
	td2, err := expand.TDTopK(opt, p.K+extra)
	if err != nil {
		return nil, err
	}
	tdRes := AlgoResult{Algo: "TDk", Total: time.Since(start), Results: len(td2.Cores), PeakBytes: td2.PeakBytes}

	return []AlgoResult{pd, buRes, tdRes}, nil
}
