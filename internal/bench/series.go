package bench

import (
	"fmt"
	"strings"
)

// Series is one figure's data: an x-axis sweep with one column per
// algorithm.
type Series struct {
	ID      string
	Title   string
	XLabel  string
	YLabel  string
	Columns []string
	Rows    []Row
}

// Row is one sweep point.
type Row struct {
	X      string
	Values []float64
}

// Format renders the series as an aligned text table, the form the
// benchrunner prints and EXPERIMENTS.md records.
func (s *Series) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", s.ID, s.Title)
	width := len(s.XLabel)
	for _, r := range s.Rows {
		if len(r.X) > width {
			width = len(r.X)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, s.XLabel)
	for _, c := range s.Columns {
		fmt.Fprintf(&b, "%14s", c)
	}
	fmt.Fprintf(&b, "    (%s)\n", s.YLabel)
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-*s", width+2, r.X)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%14.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Column returns the values of one named column in row order.
func (s *Series) Column(name string) []float64 {
	for i, c := range s.Columns {
		if c == name {
			out := make([]float64, len(s.Rows))
			for j, r := range s.Rows {
				out[j] = r.Values[i]
			}
			return out
		}
	}
	return nil
}
