// Package bench is the experiment harness reproducing Section VII of
// the paper: it builds the two datasets, projects a query subgraph with
// the inverted indexes, runs the polynomial-delay algorithms against
// the expanding baselines, and formats every figure's series.
package bench

import (
	"fmt"

	"commdb/internal/core"
	"commdb/internal/datagen"
	"commdb/internal/graph"
	"commdb/internal/index"
	"commdb/internal/relational"
)

// Params is one experiment operating point, mirroring the rows of
// Tables II and IV.
type Params struct {
	KWF  float64
	L    int
	Rmax float64
	K    int
}

// Config is a dataset's full parameter table: sweep ranges plus the
// default operating point.
type Config struct {
	KWFs     []float64
	Ls       []int
	Rmaxs    []float64
	Ks       []int
	Defaults Params
}

// DBLPConfig mirrors Table II.
func DBLPConfig() Config {
	return Config{
		KWFs:     datagen.ProbeKWFs(),
		Ls:       []int{2, 3, 4, 5, 6},
		Rmaxs:    []float64{4, 5, 6, 7, 8},
		Ks:       []int{50, 100, 150, 200, 250},
		Defaults: Params{KWF: 0.0009, L: 4, Rmax: 6, K: 150},
	}
}

// IMDBConfig mirrors Table IV.
func IMDBConfig() Config {
	return Config{
		KWFs:     datagen.ProbeKWFs(),
		Ls:       []int{2, 3, 4, 5, 6},
		Rmaxs:    []float64{9, 10, 11, 12, 13},
		Ks:       []int{50, 100, 150, 200, 250},
		Defaults: Params{KWF: 0.0009, L: 4, Rmax: 11, K: 150},
	}
}

// Dataset is a generated database materialized as a graph and indexed,
// ready for experiments.
type Dataset struct {
	Name   string
	DB     *relational.Database
	G      *graph.Graph
	Map    *relational.NodeMap
	Ix     *index.Index
	Probes []datagen.Probe
	Config Config

	// sweepCache, when enabled, memoizes CompareAll measurements per
	// operating point so figure pairs over one sweep (average delay and
	// peak memory) reuse a single run. cmd/benchrunner enables it; the
	// testing.B benchmarks do not, keeping their timings honest.
	sweepCache map[string][]AlgoResult
}

// EnableSweepCache turns on CompareAll memoization.
func (d *Dataset) EnableSweepCache() {
	d.sweepCache = make(map[string][]AlgoResult)
}

// BuildDBLP generates and indexes a DBLP-shaped dataset. authors is the
// scale knob (the paper's real set corresponds to 597000).
func BuildDBLP(authors int, seed int64) (*Dataset, error) {
	return BuildDBLPBoosted(authors, seed, 1)
}

// BuildDBLPBoosted is BuildDBLP with every probe keyword frequency
// multiplied by boost. The paper's KWF values presume a 4.1M-tuple
// dataset; at a reduced scale the same fractions leave each keyword on
// a handful of nodes and almost no communities exist. Boosting KWF by
// roughly (paper tuples / generated tuples)^(1/2..1) restores
// meaningful absolute keyword-node counts while preserving the KWF
// sweep's relative ordering. The dataset's Config carries the boosted
// values so Keywords() and the sweeps stay consistent.
func BuildDBLPBoosted(authors int, seed int64, boost float64) (*Dataset, error) {
	probes := boostProbes(datagen.DBLPProbes(), boost)
	db, err := datagen.GenerateDBLP(datagen.DBLPParams{Authors: authors, Seed: seed, Probes: probes})
	if err != nil {
		return nil, err
	}
	return finishDataset("DBLP", db, probes, boostConfig(DBLPConfig(), boost))
}

// BuildIMDB generates and indexes an IMDB-shaped dataset. users is the
// scale knob (the real set has 6040); avgRatings 0 keeps the real
// 165.60 density.
func BuildIMDB(users int, avgRatings float64, seed int64) (*Dataset, error) {
	return BuildIMDBBoosted(users, avgRatings, seed, 1)
}

// BuildIMDBBoosted is BuildIMDB with boosted probe frequencies; see
// BuildDBLPBoosted.
func BuildIMDBBoosted(users int, avgRatings float64, seed int64, boost float64) (*Dataset, error) {
	return BuildIMDBFull(users, 0, avgRatings, seed, boost)
}

// BuildIMDBFull additionally overrides the movie-catalog size (0 keeps
// the real users:movies ratio). Reduced-scale runs hold the catalog
// larger so each user still rates a few percent of it, as real
// MovieLens users do — that sparsity is what gives the movie in-degree
// distribution its long tail and the Rmax sweep its gradient.
func BuildIMDBFull(users, movies int, avgRatings float64, seed int64, boost float64) (*Dataset, error) {
	probes := boostProbes(datagen.IMDBProbes(), boost)
	db, err := datagen.GenerateIMDB(datagen.IMDBParams{
		Users: users, Movies: movies, AvgRatingsPerUser: avgRatings, Seed: seed, Probes: probes,
	})
	if err != nil {
		return nil, err
	}
	return finishDataset("IMDB", db, probes, boostConfig(IMDBConfig(), boost))
}

func boostProbes(probes []datagen.Probe, boost float64) []datagen.Probe {
	if boost == 1 {
		return probes
	}
	out := make([]datagen.Probe, len(probes))
	for i, p := range probes {
		out[i] = datagen.Probe{KWF: p.KWF * boost, Words: p.Words}
	}
	return out
}

func boostConfig(cfg Config, boost float64) Config {
	if boost == 1 {
		return cfg
	}
	kwfs := make([]float64, len(cfg.KWFs))
	for i, k := range cfg.KWFs {
		kwfs[i] = k * boost
	}
	cfg.KWFs = kwfs
	cfg.Defaults.KWF *= boost
	return cfg
}

func finishDataset(name string, db *relational.Database, probes []datagen.Probe, cfg Config) (*Dataset, error) {
	g, m, err := db.ToGraph()
	if err != nil {
		return nil, err
	}
	r := cfg.Rmaxs[len(cfg.Rmaxs)-1] // index supports the largest sweep radius
	ix, err := index.Build(g, index.BuildOptions{R: r})
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: name, DB: db, G: g, Map: m, Ix: ix, Probes: probes, Config: cfg}, nil
}

// Keywords picks the query keywords for an operating point: the first L
// probe words planted at the requested KWF (Table III's 6-word row at
// the default KWF exists precisely so l can sweep to 6).
func (d *Dataset) Keywords(p Params) ([]string, error) {
	words := datagen.WordsAt(d.Probes, p.KWF)
	if words == nil {
		return nil, fmt.Errorf("bench: no probe keywords at KWF %v", p.KWF)
	}
	if p.L > len(words) {
		return nil, fmt.Errorf("bench: l=%d exceeds the %d probe words at KWF %v", p.L, len(words), p.KWF)
	}
	return words[:p.L], nil
}

// KeywordNodeIDs resolves one keyword against the dataset graph, a
// convenience for calibration and reporting.
func (d *Dataset) KeywordNodeIDs(keyword string) ([]graph.NodeID, error) {
	return core.KeywordNodes(d.G, d.Ix.Fulltext(), keyword)
}
