package bench

import (
	"strings"
	"sync"
	"testing"
)

var (
	onceDBLP sync.Once
	dsDBLP   *Dataset
	onceIMDB sync.Once
	dsIMDB   *Dataset
)

// testDBLP returns a small cached DBLP dataset for harness tests.
func testDBLP(t *testing.T) *Dataset {
	t.Helper()
	onceDBLP.Do(func() {
		d, err := BuildDBLPBoosted(2000, 11, 2.5)
		if err != nil {
			t.Fatal(err)
		}
		dsDBLP = d
	})
	if dsDBLP == nil {
		t.Skip("dataset build failed earlier")
	}
	return dsDBLP
}

func testIMDB(t *testing.T) *Dataset {
	t.Helper()
	onceIMDB.Do(func() {
		d, err := BuildIMDBFull(400, 1200, 165, 13, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		dsIMDB = d
	})
	if dsIMDB == nil {
		t.Skip("dataset build failed earlier")
	}
	return dsIMDB
}

func TestConfigsMirrorPaperTables(t *testing.T) {
	d := DBLPConfig()
	if d.Defaults.Rmax != 6 || d.Defaults.L != 4 || d.Defaults.K != 150 || d.Defaults.KWF != 0.0009 {
		t.Fatalf("DBLP defaults = %+v", d.Defaults)
	}
	if len(d.Rmaxs) != 5 || d.Rmaxs[0] != 4 || d.Rmaxs[4] != 8 {
		t.Fatalf("DBLP Rmax sweep = %v", d.Rmaxs)
	}
	i := IMDBConfig()
	if i.Defaults.Rmax != 11 {
		t.Fatalf("IMDB default Rmax = %v, want 11", i.Defaults.Rmax)
	}
	if len(i.Rmaxs) != 5 || i.Rmaxs[0] != 9 || i.Rmaxs[4] != 13 {
		t.Fatalf("IMDB Rmax sweep = %v", i.Rmaxs)
	}
}

func TestKeywordsSelection(t *testing.T) {
	d := testDBLP(t)
	kws, err := d.Keywords(Params{KWF: d.Config.Defaults.KWF, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(kws) != 4 || kws[0] != "environment" {
		t.Fatalf("keywords = %v", kws)
	}
	// l=6 only fits the 6-word default KWF row.
	if _, err := d.Keywords(Params{KWF: d.Config.KWFs[0], L: 6}); err == nil {
		t.Fatal("l=6 at a 4-word KWF row should error")
	}
	if _, err := d.Keywords(Params{KWF: 0.5, L: 2}); err == nil {
		t.Fatal("unknown KWF should error")
	}
}

// TestCompareAllAgreement: the three COMM-all algorithms must find the
// same number of communities on the same projected graph.
func TestCompareAllAgreement(t *testing.T) {
	d := testDBLP(t)
	p := d.Config.Defaults
	p.Rmax = 6
	results, proj, err := d.CompareAll(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("want 3 algorithms, got %d", len(results))
	}
	n := results[0].Results
	if n == 0 {
		t.Fatal("boosted test dataset should yield communities at the default point")
	}
	for _, r := range results {
		if r.Results != n {
			t.Fatalf("algorithm %s found %d results, %s found %d",
				results[0].Algo, n, r.Algo, r.Results)
		}
		if r.PeakBytes <= 0 {
			t.Fatalf("%s has non-positive memory", r.Algo)
		}
	}
	if proj.Sub.G.NumNodes() > d.G.NumNodes() {
		t.Fatal("projection larger than graph")
	}
	if proj.Ratio <= 0 || proj.Ratio > 1 {
		t.Fatalf("projection ratio %v", proj.Ratio)
	}
}

func TestCompareAllIMDB(t *testing.T) {
	d := testIMDB(t)
	p := d.Config.Defaults
	results, _, err := d.CompareAll(p, 500)
	if err != nil {
		t.Fatal(err)
	}
	// With a cap all algorithms stop at the same count.
	n := results[0].Results
	for _, r := range results {
		if r.Results != n {
			t.Fatalf("%s found %d, first algorithm %d", r.Algo, r.Results, n)
		}
	}
}

// TestCompareTopKAgreement: all three top-k algorithms return the same
// number of results and PDk's cost order matches the baselines' exact
// top-k costs.
func TestCompareTopKAgreement(t *testing.T) {
	d := testDBLP(t)
	p := d.Config.Defaults
	p.K = 25
	results, _, err := d.CompareTopK(p)
	if err != nil {
		t.Fatal(err)
	}
	n := results[0].Results
	for _, r := range results {
		if r.Results != n {
			t.Fatalf("%s returned %d results, first %d", r.Algo, r.Results, n)
		}
	}
}

func TestCompareInteractive(t *testing.T) {
	d := testDBLP(t)
	p := d.Config.Defaults
	p.K = 10
	results, err := d.CompareInteractive(p, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("want 3 algorithms")
	}
	// All should have k+extra results (or the full result set if
	// smaller), and agree with each other.
	n := results[0].Results
	for _, r := range results {
		if r.Results != n {
			t.Fatalf("%s has %d results, first %d", r.Algo, r.Results, n)
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	exps := Experiments()
	want := []string{
		"fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f",
		"fig10a", "fig10b", "fig10c", "fig10d",
		"fig11a", "fig11b", "fig11c", "fig11d", "fig11e", "fig11f",
		"fig11k", "fig12dblp", "fig12imdb",
	}
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
		if exps[i].Dataset != "dblp" && exps[i].Dataset != "imdb" {
			t.Fatalf("experiment %s has dataset %q", id, exps[i].Dataset)
		}
	}
}

// TestRunOneExperimentPerKind executes one COMM-all figure, one COMM-k
// figure and one interactive figure end to end on the small datasets.
func TestRunOneExperimentPerKind(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := testDBLP(t)
	for _, id := range []string{"fig11a", "fig11k", "fig12dblp"} {
		var exp *Experiment
		for i := range Experiments() {
			e := Experiments()[i]
			if e.ID == id {
				exp = &e
				break
			}
		}
		if exp == nil {
			t.Fatalf("experiment %s missing", id)
		}
		s, err := exp.Run(d, 300)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(s.Rows) != 5 {
			t.Fatalf("%s: %d sweep rows, want 5", id, len(s.Rows))
		}
		if len(s.Columns) != 3 {
			t.Fatalf("%s: %d columns, want 3", id, len(s.Columns))
		}
		text := s.Format()
		if !strings.Contains(text, s.ID) || !strings.Contains(text, s.Columns[0]) {
			t.Fatalf("%s: Format output incomplete:\n%s", id, text)
		}
		if col := s.Column(s.Columns[0]); len(col) != len(s.Rows) {
			t.Fatalf("%s: Column extraction broken", id)
		}
		if s.Column("nonexistent") != nil {
			t.Fatal("unknown column should return nil")
		}
	}
}

func TestIndexReport(t *testing.T) {
	d := testDBLP(t)
	rep, err := d.BuildIndexReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.GraphNodes != d.G.NumNodes() || rep.GraphEdges != d.G.NumEdges() {
		t.Fatal("graph sizes")
	}
	if rep.IndexBytes <= 0 || rep.RawBytes <= 0 {
		t.Fatal("sizes must be positive")
	}
	if rep.MaxProjRatio <= 0 || rep.MaxProjRatio > 1 {
		t.Fatalf("max projection ratio %v", rep.MaxProjRatio)
	}
	if rep.AvgProjRatio > rep.MaxProjRatio {
		t.Fatal("avg ratio exceeds max")
	}
	if rep.ProjectedRuns != 5 {
		t.Fatalf("projected runs = %d, want 5 (one per KWF)", rep.ProjectedRuns)
	}
	if !strings.Contains(rep.String(), "DBLP") {
		t.Fatal("report rendering")
	}
}

// TestProjectionShrinks: at bench scale the projected graph must be a
// small fraction of the full graph, the headline of Section VI.
func TestProjectionShrinks(t *testing.T) {
	d := testDBLP(t)
	keywords, err := d.Keywords(d.Config.Defaults)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := d.Ix.Project(keywords, d.Config.Defaults.Rmax)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Ratio > 0.5 {
		t.Fatalf("projection keeps %.1f%% of the graph; expected a substantial reduction", proj.Ratio*100)
	}
}

func TestAblationProjection(t *testing.T) {
	d := testDBLP(t)
	s, err := d.AblationProjection(d.Config.Defaults)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(s.Rows))
	}
	// Both variants must return the same number of results; the
	// projected graph must be smaller.
	if s.Rows[0].Values[2] != s.Rows[1].Values[2] {
		t.Fatalf("direct found %v results, projected %v", s.Rows[0].Values[2], s.Rows[1].Values[2])
	}
	if s.Rows[1].Values[1] >= s.Rows[0].Values[1] {
		t.Fatalf("projected graph (%v nodes) not smaller than G_D (%v)", s.Rows[1].Values[1], s.Rows[0].Values[1])
	}
}

func TestAblationSlotCache(t *testing.T) {
	d := testDBLP(t)
	s, err := d.AblationSlotCache(d.Config.Defaults, 500)
	if err != nil {
		t.Fatal(err)
	}
	cached, uncached := s.Rows[0], s.Rows[1]
	if cached.Values[2] != uncached.Values[2] {
		t.Fatalf("cached found %v results, uncached %v — caching changed semantics",
			cached.Values[2], uncached.Values[2])
	}
	if cached.Values[1] >= uncached.Values[1] {
		t.Fatalf("cached used %v Dijkstra runs, uncached %v — caching saved nothing",
			cached.Values[1], uncached.Values[1])
	}
}

func TestChartRendering(t *testing.T) {
	s := &Series{
		ID: "x", Title: "t", XLabel: "p", YLabel: "ms",
		Columns: []string{"A", "B"},
		Rows: []Row{
			{X: "1", Values: []float64{1, 100}},
			{X: "2", Values: []float64{10, 0}},
		},
	}
	out := s.Chart(40)
	if !strings.Contains(out, "p = 1") || !strings.Contains(out, "A") {
		t.Fatalf("chart incomplete:\n%s", out)
	}
	// The 100 bar must be longer than the 1 bar.
	lines := strings.Split(out, "\n")
	var aLen, bLen int
	for _, l := range lines {
		if strings.Contains(l, "| 1.000") {
			aLen = strings.Count(l, "#")
		}
		if strings.Contains(l, "| 100.000") {
			bLen = strings.Count(l, "#")
		}
	}
	if bLen <= aLen {
		t.Fatalf("log bars not ordered: a=%d b=%d\n%s", aLen, bLen, out)
	}
	// Degenerate charts don't panic.
	empty := &Series{ID: "e", Columns: []string{"A"}, Rows: []Row{{X: "1", Values: []float64{0}}}}
	if !strings.Contains(empty.Chart(10), "no positive values") {
		t.Fatal("empty chart message missing")
	}
	flat := &Series{ID: "f", Columns: []string{"A"}, Rows: []Row{{X: "1", Values: []float64{5}}}}
	if flat.Chart(5) == "" {
		t.Fatal("flat chart should render")
	}
}

func TestMotivation(t *testing.T) {
	d := testDBLP(t)
	s, err := d.Motivation(d.Config.Defaults, 5000)
	if err != nil {
		t.Fatal(err)
	}
	treeRow, commRow := s.Rows[0], s.Rows[1]
	if commRow.Values[0] <= 0 {
		t.Fatal("no communities at the default point")
	}
	if treeRow.Values[0] < commRow.Values[0] {
		t.Fatalf("motivation inverted: %v trees vs %v communities",
			treeRow.Values[0], commRow.Values[0])
	}
}

func TestLatencyReport(t *testing.T) {
	d := testDBLP(t)
	s, err := d.LatencyReport(3, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != len(d.Probes) {
		t.Fatalf("rows = %d, want one per KWF bucket", len(s.Rows))
	}
	for _, r := range s.Rows {
		p50, p95, p99, m := r.Values[0], r.Values[1], r.Values[2], r.Values[3]
		if p50 < 0 || p95 < p50 || p99 < p95 {
			t.Fatalf("percentiles out of order at %s: %v", r.X, r.Values)
		}
		if m <= 0 {
			t.Fatalf("mean latency not positive at %s", r.X)
		}
	}
}

func TestPercentileHelpers(t *testing.T) {
	if percentile(nil, 0.5) != 0 || mean(nil) != 0 {
		t.Fatal("empty inputs")
	}
	data := []float64{1, 2, 3, 4, 5}
	if percentile(data, 0.5) != 3 {
		t.Fatalf("p50 = %v", percentile(data, 0.5))
	}
	if percentile(data, 0.99) != 4 { // nearest-rank on 5 samples
		t.Fatalf("p99 = %v", percentile(data, 0.99))
	}
	if mean(data) != 3 {
		t.Fatalf("mean = %v", mean(data))
	}
}
