package bench

import (
	"time"

	"commdb/internal/core"
)

// AblationProjection quantifies Section VI's claim that projecting a
// query-specific subgraph "significantly reduces the search space": it
// runs the same PDk query (top-k cores at the default operating point)
// directly on G_D and on the projected G_P, reporting both times and
// the graph-size ratio.
//
// DESIGN.md lists this as the projection ablation; the runner id is
// "ablation-projection".
func (d *Dataset) AblationProjection(p Params) (*Series, error) {
	keywords, err := d.Keywords(p)
	if err != nil {
		return nil, err
	}

	// Direct run on the full database graph.
	startDirect := time.Now()
	engD, err := core.NewEngine(d.G, d.Ix.Fulltext(), keywords, p.Rmax)
	if err != nil {
		return nil, err
	}
	itD := core.NewTopK(engD)
	nDirect := 0
	for nDirect < p.K {
		if _, ok := itD.NextCore(); !ok {
			break
		}
		nDirect++
	}
	directTime := time.Since(startDirect)

	// Projected run, including the projection itself.
	startProj := time.Now()
	proj, err := d.Ix.Project(keywords, p.Rmax)
	if err != nil {
		return nil, err
	}
	engP, err := core.NewEngine(proj.Sub.G, nil, keywords, p.Rmax)
	if err != nil {
		return nil, err
	}
	itP := core.NewTopK(engP)
	nProj := 0
	for nProj < p.K {
		if _, ok := itP.NextCore(); !ok {
			break
		}
		nProj++
	}
	projTime := time.Since(startProj)

	s := &Series{
		ID:      "ablation-projection",
		Title:   d.Name + " PDk top-k with and without graph projection",
		XLabel:  "variant",
		YLabel:  "ms / nodes / results",
		Columns: []string{"total ms", "graph nodes", "results"},
		Rows: []Row{
			{X: "direct G_D", Values: []float64{
				float64(directTime.Nanoseconds()) * msPerNs, float64(d.G.NumNodes()), float64(nDirect)}},
			{X: "projected G_P", Values: []float64{
				float64(projTime.Nanoseconds()) * msPerNs, float64(proj.Sub.G.NumNodes()), float64(nProj)}},
		},
	}
	return s, nil
}

// AblationSlotCache quantifies the engine's full-set memoization (a
// pure implementation optimization over the paper's pseudocode, see
// DESIGN.md): PDall enumeration with the cache versus the same engine
// instructed to recompute every Neighbor run.
func (d *Dataset) AblationSlotCache(p Params, maxResults int) (*Series, error) {
	keywords, err := d.Keywords(p)
	if err != nil {
		return nil, err
	}
	proj, err := d.Ix.Project(keywords, p.Rmax)
	if err != nil {
		return nil, err
	}
	run := func(disable bool) (time.Duration, int, int, error) {
		eng, err := core.NewEngine(proj.Sub.G, nil, keywords, p.Rmax)
		if err != nil {
			return 0, 0, 0, err
		}
		if disable {
			eng.DisableSlotCache()
		}
		it := core.NewAll(eng)
		start := time.Now()
		n := 0
		for {
			if _, ok := it.NextCore(); !ok {
				break
			}
			n++
			if maxResults > 0 && n >= maxResults {
				break
			}
		}
		return time.Since(start), n, eng.NeighborRuns(), nil
	}
	cachedTime, cachedN, cachedRuns, err := run(false)
	if err != nil {
		return nil, err
	}
	plainTime, plainN, plainRuns, err := run(true)
	if err != nil {
		return nil, err
	}
	return &Series{
		ID:      "ablation-slotcache",
		Title:   d.Name + " PDall with and without full-set Neighbor caching",
		XLabel:  "variant",
		YLabel:  "ms / dijkstra runs / results",
		Columns: []string{"total ms", "dijkstras", "results"},
		Rows: []Row{
			{X: "cached", Values: []float64{float64(cachedTime.Nanoseconds()) * msPerNs, float64(cachedRuns), float64(cachedN)}},
			{X: "uncached", Values: []float64{float64(plainTime.Nanoseconds()) * msPerNs, float64(plainRuns), float64(plainN)}},
		},
	}, nil
}
