package bench

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders the series as a log-scale ASCII bar chart, one block of
// bars per sweep point — a terminal stand-in for the paper's figures.
// Zero and negative values render as empty bars.
func (s *Series) Chart(width int) string {
	if width < 20 {
		width = 20
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s, log scale)\n", s.ID, s.Title, s.YLabel)

	// Log-scale bounds across every value.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range s.Rows {
		for _, v := range r.Values {
			if v > 0 {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
	}
	if math.IsInf(lo, 1) {
		b.WriteString("(no positive values)\n")
		return b.String()
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)
	if logHi-logLo < 1e-9 {
		logHi = logLo + 1
	}

	nameW := 0
	for _, c := range s.Columns {
		if len(c) > nameW {
			nameW = len(c)
		}
	}
	scale := func(v float64) int {
		if v <= 0 {
			return 0
		}
		frac := (math.Log10(v) - logLo) / (logHi - logLo)
		n := int(math.Round(frac * float64(width-1)))
		return n + 1 // minimum one block for the smallest value
	}
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%s = %s\n", s.XLabel, r.X)
		for i, c := range s.Columns {
			v := 0.0
			if i < len(r.Values) {
				v = r.Values[i]
			}
			fmt.Fprintf(&b, "  %-*s |%-*s| %.3f\n", nameW, c, width, strings.Repeat("#", scale(v)), v)
		}
	}
	return b.String()
}
