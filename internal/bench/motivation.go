package bench

import (
	"commdb/internal/core"
	"commdb/internal/trees"
)

// Motivation quantifies the paper's Section I argument on a dataset:
// for the default operating point, how many ranked connected trees (the
// pre-community answer form of Fig. 2) exist versus how many
// communities (Fig. 3), and how much structure the top community
// carries compared to the top tree. Runner id: "motivation".
func (d *Dataset) Motivation(p Params, capResults int) (*Series, error) {
	keywords, err := d.Keywords(p)
	if err != nil {
		return nil, err
	}
	proj, err := d.Ix.Project(keywords, p.Rmax)
	if err != nil {
		return nil, err
	}
	gp := proj.Sub.G

	// Communities.
	eng, err := core.NewEngine(gp, nil, keywords, p.Rmax)
	if err != nil {
		return nil, err
	}
	it := core.NewAll(eng)
	nComm := 0
	topCommNodes, topCommCenters := 0, 0
	for {
		cc, ok := it.NextCore()
		if !ok {
			break
		}
		if nComm == 0 {
			r := eng.GetCommunity(cc.Core)
			topCommNodes = len(r.Nodes)
			topCommCenters = len(r.Cnodes)
		}
		nComm++
		if capResults > 0 && nComm >= capResults {
			break
		}
	}

	// Trees on the same projected graph.
	te, err := trees.NewEnumerator(gp, nil, keywords, p.Rmax)
	if err != nil {
		return nil, err
	}
	nTrees := 0
	topTreeNodes := 0
	for {
		tr, ok := te.Next()
		if !ok {
			break
		}
		if nTrees == 0 {
			topTreeNodes = len(tr.Nodes)
		}
		nTrees++
		if capResults > 0 && nTrees >= capResults {
			break
		}
	}

	return &Series{
		ID:      "motivation",
		Title:   d.Name + " trees vs communities at the default operating point",
		XLabel:  "answer form",
		YLabel:  "count / top-answer nodes / top-answer centers",
		Columns: []string{"answers", "top nodes", "top centers"},
		Rows: []Row{
			{X: "connected trees", Values: []float64{float64(nTrees), float64(topTreeNodes), 1}},
			{X: "communities", Values: []float64{float64(nComm), float64(topCommNodes), float64(topCommCenters)}},
		},
	}, nil
}
