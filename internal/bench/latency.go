package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"commdb/internal/core"
	"commdb/internal/datagen"
)

// LatencyReport runs a randomized query workload through the indexed
// path — project, then PDk top-k — and reports latency percentiles per
// keyword-frequency bucket: the view a service operator would watch,
// complementing the paper's per-figure averages.
//
// Each query draws l (2..4) keywords from one KWF bucket's probe set in
// a random order. Runner id: "latency".
func (d *Dataset) LatencyReport(queriesPerBucket, k int, seed int64) (*Series, error) {
	rng := rand.New(rand.NewSource(seed))
	s := &Series{
		ID:      "latency",
		Title:   fmt.Sprintf("%s top-%d query latency by KWF bucket (%d queries each)", d.Name, k, queriesPerBucket),
		XLabel:  "KWF",
		YLabel:  "ms",
		Columns: []string{"p50", "p95", "p99", "mean"},
	}
	for _, probe := range d.Probes {
		lat, err := d.bucketLatencies(rng, probe, queriesPerBucket, k)
		if err != nil {
			return nil, err
		}
		sort.Float64s(lat)
		s.Rows = append(s.Rows, Row{
			X: fmt.Sprintf("%.6g", probe.KWF),
			Values: []float64{
				percentile(lat, 0.50), percentile(lat, 0.95),
				percentile(lat, 0.99), mean(lat),
			},
		})
	}
	return s, nil
}

func (d *Dataset) bucketLatencies(rng *rand.Rand, probe datagen.Probe, queries, k int) ([]float64, error) {
	lat := make([]float64, 0, queries)
	for q := 0; q < queries; q++ {
		l := 2 + rng.Intn(3)
		if l > len(probe.Words) {
			l = len(probe.Words)
		}
		perm := rng.Perm(len(probe.Words))[:l]
		keywords := make([]string, l)
		for i, idx := range perm {
			keywords[i] = probe.Words[idx]
		}

		start := time.Now()
		proj, err := d.Ix.Project(keywords, d.Config.Defaults.Rmax)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(proj.Sub.G, nil, keywords, d.Config.Defaults.Rmax)
		if err != nil {
			return nil, err
		}
		it := core.NewTopK(eng)
		for i := 0; i < k; i++ {
			if _, ok := it.NextCore(); !ok {
				break
			}
		}
		lat = append(lat, float64(time.Since(start).Nanoseconds())*msPerNs)
	}
	return lat, nil
}

// percentile returns the p-quantile of sorted data (nearest rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range a {
		s += v
	}
	return s / float64(len(a))
}
