package index

import (
	"bytes"
	"testing"

	"commdb/internal/graph"
)

// partialTestGraph builds a small two-community graph with shared and
// distinct terms.
func partialTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	ids := make([]graph.NodeID, 8)
	terms := [][]string{
		{"alpha", "beta"}, {"alpha"}, {"gamma"}, {"beta", "gamma"},
		{"alpha"}, {"delta"}, {"delta", "beta"}, {"gamma"},
	}
	for i := range ids {
		ids[i] = b.AddNode("n", terms[i]...)
	}
	for i := 0; i < len(ids); i++ {
		b.AddBiEdge(ids[i], ids[(i+1)%len(ids)], float64(1+i%3))
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func identityPerm(n int) []graph.NodeID {
	perm := make([]graph.NodeID, n)
	for i := range perm {
		perm[i] = graph.NodeID(i)
	}
	return perm
}

// With the same graph, an identity permutation, and an empty dirty
// set, the partial rebuild must reproduce the full build byte for
// byte; the same holds when every term is dirty (pure recompute).
func TestRebuildPartialMatchesBuild(t *testing.T) {
	g := partialTestGraph(t)
	opt := BuildOptions{R: 4, Workers: 2}
	full, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	perm := identityPerm(g.NumNodes())

	for name, dirty := range map[string]map[string]bool{
		"all-clean": {},
		"all-dirty": {"alpha": true, "beta": true, "gamma": true, "delta": true},
		"mixed":     {"beta": true, "delta": true},
	} {
		got, st, err := RebuildPartial(g, opt, full, perm, dirty, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Equal(full) {
			t.Fatalf("%s: partial rebuild differs from full build", name)
		}
		var a, b bytes.Buffer
		if err := full.Write(&a); err != nil {
			t.Fatal(err)
		}
		if err := got.Write(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s: serialized artifacts differ", name)
		}
		if st.DirtyTerms != len(dirty) {
			t.Fatalf("%s: DirtyTerms = %d, want %d", name, st.DirtyTerms, len(dirty))
		}
		if st.RemappedTerms+st.DirtyTerms != st.TotalTerms {
			t.Fatalf("%s: stats do not partition the terms: %+v", name, st)
		}
	}
}

// A clean term whose word is missing from the old index, or whose
// postings reference a deleted node, must fail closed.
func TestRebuildPartialFailsClosed(t *testing.T) {
	g := partialTestGraph(t)
	opt := BuildOptions{R: 4}
	full, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Deleted endpoint: mark node 0 deleted but leave "alpha" clean.
	perm := identityPerm(g.NumNodes())
	perm[0] = -1
	if _, _, err := RebuildPartial(g, opt, full, perm, map[string]bool{}, nil); err == nil {
		t.Fatal("clean term with deleted endpoint should fail")
	}
	// Wrong radius.
	if _, _, err := RebuildPartial(g, opt, full, identityPerm(g.NumNodes()), nil, nil); err == nil {
		_ = err
	}
	bad := BuildOptions{R: 5}
	if _, _, err := RebuildPartial(g, bad, full, identityPerm(g.NumNodes()), nil, nil); err == nil {
		t.Fatal("radius mismatch should fail")
	}
	// Wrong permutation length.
	if _, _, err := RebuildPartial(g, opt, full, identityPerm(3), nil, nil); err == nil {
		t.Fatal("short permutation should fail")
	}
}
