package index

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"commdb/internal/core"
	"commdb/internal/graph"
)

func TestIndexIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	g, kws := randomKeywordGraph(t, rng, 40, 160, 3)
	ix, err := Build(g, BuildOptions{R: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := ReadInto(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.R() != 7 {
		t.Fatalf("R = %v, want 7", ix2.R())
	}
	for _, kw := range kws {
		a, b := ix.EdgePostings(kw), ix2.EdgePostings(kw)
		if len(a) != len(b) {
			t.Fatalf("term %s: %d vs %d postings", kw, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("term %s posting %d: %v vs %v", kw, i, a[i], b[i])
			}
		}
	}
	// Projection over the loaded index gives identical graphs.
	p1, err := ix.Project(kws[:2], 6)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ix2.Project(kws[:2], 6)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Sub.G.NumNodes() != p2.Sub.G.NumNodes() || p1.Sub.G.NumEdges() != p2.Sub.G.NumEdges() {
		t.Fatalf("projection differs after round trip: (%d,%d) vs (%d,%d)",
			p1.Sub.G.NumNodes(), p1.Sub.G.NumEdges(), p2.Sub.G.NumNodes(), p2.Sub.G.NumEdges())
	}
}

func TestIndexIORejectsMismatchedGraph(t *testing.T) {
	g, _ := core.PaperGraph()
	ix, err := Build(g, BuildOptions{R: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	other, _ := core.IntroGraph()
	if _, err := ReadInto(&buf, other); err == nil {
		t.Fatal("loading an index against a different graph should fail")
	}
}

func TestIndexIORejectsGarbage(t *testing.T) {
	g, _ := core.PaperGraph()
	if _, err := ReadInto(strings.NewReader("garbage"), g); err == nil {
		t.Fatal("bad magic should fail")
	}
	ix, err := Build(g, BuildOptions{R: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/3]
	if _, err := ReadInto(bytes.NewReader(trunc), g); err == nil {
		t.Fatal("truncated index should fail")
	}
}

func TestIndexIOEmptyPostings(t *testing.T) {
	// A graph whose dictionary has terms with no invertedE entries
	// (MinPostings skips) round-trips cleanly.
	b := graph.NewBuilder()
	b.AddNode("a", "only")
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, BuildOptions{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadInto(&buf, g); err != nil {
		t.Fatal(err)
	}
}
