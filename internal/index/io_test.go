package index

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"commdb/internal/core"
	"commdb/internal/graph"
)

func TestIndexIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	g, kws := randomKeywordGraph(t, rng, 40, 160, 3)
	ix, err := Build(g, BuildOptions{R: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := ReadInto(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.R() != 7 {
		t.Fatalf("R = %v, want 7", ix2.R())
	}
	for _, kw := range kws {
		a, b := ix.EdgePostings(kw), ix2.EdgePostings(kw)
		if len(a) != len(b) {
			t.Fatalf("term %s: %d vs %d postings", kw, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("term %s posting %d: %v vs %v", kw, i, a[i], b[i])
			}
		}
	}
	// Projection over the loaded index gives identical graphs.
	p1, err := ix.Project(kws[:2], 6)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ix2.Project(kws[:2], 6)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Sub.G.NumNodes() != p2.Sub.G.NumNodes() || p1.Sub.G.NumEdges() != p2.Sub.G.NumEdges() {
		t.Fatalf("projection differs after round trip: (%d,%d) vs (%d,%d)",
			p1.Sub.G.NumNodes(), p1.Sub.G.NumEdges(), p2.Sub.G.NumNodes(), p2.Sub.G.NumEdges())
	}
}

func TestIndexIORejectsMismatchedGraph(t *testing.T) {
	g, _ := core.PaperGraph()
	ix, err := Build(g, BuildOptions{R: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	other, _ := core.IntroGraph()
	if _, err := ReadInto(&buf, other); err == nil {
		t.Fatal("loading an index against a different graph should fail")
	}
}

func TestIndexIORejectsGarbage(t *testing.T) {
	g, _ := core.PaperGraph()
	if _, err := ReadInto(strings.NewReader("garbage"), g); err == nil {
		t.Fatal("bad magic should fail")
	}
	ix, err := Build(g, BuildOptions{R: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/3]
	if _, err := ReadInto(bytes.NewReader(trunc), g); err == nil {
		t.Fatal("truncated index should fail")
	}
}

// loadClosed attempts a load and requires it to fail closed: an error
// wrapping ErrCorruptIndex or ErrIndexMismatch, no index, no panic.
// Returns false (with the test failed) when the load accepted the
// artifact — callers use that to tell "corruption detected" apart from
// "corruption happened to cancel out" in exhaustive sweeps.
func loadClosed(t *testing.T, data []byte, g *graph.Graph, what string) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("%s: load panicked: %v", what, p)
		}
	}()
	ix, err := ReadInto(bytes.NewReader(data), g)
	if err == nil {
		t.Fatalf("%s: corrupt artifact accepted", what)
	}
	if ix != nil {
		t.Fatalf("%s: error AND partial index returned", what)
	}
	if !errors.Is(err, ErrCorruptIndex) && !errors.Is(err, ErrIndexMismatch) {
		t.Fatalf("%s: error %v wraps neither ErrCorruptIndex nor ErrIndexMismatch", what, err)
	}
}

// smallArtifact builds a compact serialized index plus its graph, the
// corpus for the exhaustive corruption sweeps.
func smallArtifact(t *testing.T) ([]byte, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(4242))
	g, _ := randomKeywordGraph(t, rng, 12, 36, 2)
	ix, err := Build(g, BuildOptions{R: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), g
}

func TestIndexIOTruncateEveryPrefix(t *testing.T) {
	data, g := smallArtifact(t)
	for n := 0; n < len(data); n++ {
		loadClosed(t, data[:n], g, fmt.Sprintf("prefix of %d/%d bytes", n, len(data)))
	}
}

func TestIndexIOFlipEveryByte(t *testing.T) {
	data, g := smallArtifact(t)
	mut := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		for _, bit := range []byte{0x01, 0x80} {
			copy(mut, data)
			mut[i] ^= bit
			// A flip is allowed to survive only if CRCs still verify —
			// impossible for a single-bit flip over CRC32-protected
			// sections, so every one must be rejected.
			loadClosed(t, mut, g, fmt.Sprintf("byte %d bit %02x flipped", i, bit))
		}
	}
}

func TestIndexIOFuzzStyleCorruption(t *testing.T) {
	data, g := smallArtifact(t)
	rng := rand.New(rand.NewSource(99))
	mut := make([]byte, 0, len(data)*2)
	for round := 0; round < 500; round++ {
		mut = append(mut[:0], data...)
		switch rng.Intn(4) {
		case 0: // random multi-byte stomp
			off := rng.Intn(len(mut))
			n := 1 + rng.Intn(8)
			for j := 0; j < n && off+j < len(mut); j++ {
				mut[off+j] = byte(rng.Intn(256))
			}
		case 1: // truncate
			mut = mut[:rng.Intn(len(mut))]
		case 2: // trailing garbage
			extra := make([]byte, 1+rng.Intn(16))
			rng.Read(extra)
			mut = append(mut, extra...)
		case 3: // splice a chunk out of the middle
			off := rng.Intn(len(mut))
			n := 1 + rng.Intn(16)
			if off+n > len(mut) {
				n = len(mut) - off
			}
			mut = append(mut[:off], mut[off+n:]...)
		}
		if bytes.Equal(mut, data) {
			continue // mutation was a no-op (e.g. stomp wrote same bytes)
		}
		loadClosed(t, mut, g, fmt.Sprintf("fuzz round %d", round))
	}
}

func TestIndexIOTrailingGarbage(t *testing.T) {
	data, g := smallArtifact(t)
	withExtra := append(append([]byte{}, data...), 0x00)
	_, err := ReadInto(bytes.NewReader(withExtra), g)
	if !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("trailing byte accepted (err=%v)", err)
	}
}

func TestIndexIORejectsOldVersion(t *testing.T) {
	data, g := smallArtifact(t)
	// Byte 4 is the uvarint version (2 → one byte). Rewriting it to 1
	// simulates a stale v1 artifact; the header CRC also breaks, and
	// either way the load must fail closed.
	old := append([]byte{}, data...)
	old[4] = 1
	loadClosed(t, old, g, "version byte rewritten to 1")
}

func TestIndexIOErrClassification(t *testing.T) {
	data, g := smallArtifact(t)
	// Truncation → ErrCorruptIndex specifically (not just any error):
	// callers use this to classify the failure as permanent.
	_, err := ReadInto(bytes.NewReader(data[:len(data)/2]), g)
	if !errors.Is(err, ErrCorruptIndex) {
		t.Fatalf("truncation error %v does not wrap ErrCorruptIndex", err)
	}
	// Wrong graph → ErrIndexMismatch.
	b := graph.NewBuilder()
	b.AddNode("z", "zeta")
	other, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	_, err = ReadInto(bytes.NewReader(data), other)
	if !errors.Is(err, ErrIndexMismatch) {
		t.Fatalf("mismatch error %v does not wrap ErrIndexMismatch", err)
	}
}

func TestIndexIOEmptyPostings(t *testing.T) {
	// A graph whose dictionary has terms with no invertedE entries
	// (MinPostings skips) round-trips cleanly.
	b := graph.NewBuilder()
	b.AddNode("a", "only")
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, BuildOptions{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadInto(&buf, g); err != nil {
		t.Fatal(err)
	}
}
