package index

import (
	"fmt"
	"sort"

	"commdb/internal/core"
	"commdb/internal/fulltext"
	"commdb/internal/govern"
	"commdb/internal/graph"
	"commdb/internal/obs"
	"commdb/internal/sssp"
)

// Projection is the result of Algorithm 6: a small subgraph G_P of the
// database graph that answers one l-keyword query exactly, plus the
// node mapping back into G_D.
type Projection struct {
	// Sub is the projected graph with the parent mapping.
	Sub *graph.Subgraph
	// Ratio is |V(G_P)| / |V(G_D)|, the search-space reduction the
	// paper reports (max 1.2% / avg 0.4% on DBLP).
	Ratio float64
}

// Project runs Algorithm 6 for the given keywords and radius. rmax must
// not exceed the index's build radius R. When some keyword was not
// indexed the projection still works through invertedN alone (its edge
// list is simply what the other keywords contribute), so callers should
// index every term they expect in queries.
func (ix *Index) Project(keywords []string, rmax float64) (*Projection, error) {
	return ix.ProjectBudget(keywords, rmax, nil)
}

// ProjectBudget is Project under a governance budget: the posting
// gathers poll it and the two virtual-node passes charge it. A tripped
// budget aborts with the stop reason — a truncated projection would
// silently change query answers, so there is no partial projection.
func (ix *Index) ProjectBudget(keywords []string, rmax float64, bud *govern.Budget) (*Projection, error) {
	return ix.ProjectTrace(keywords, rmax, bud, nil)
}

// ProjectTrace is ProjectBudget under a query trace: the projection
// records a "project" span and the project_* counters (union size, kept
// vs. dropped nodes, kept edges), and its two virtual-node Dijkstra
// passes report their work. tr may be nil for an untraced projection.
func (ix *Index) ProjectTrace(keywords []string, rmax float64, bud *govern.Budget, tr *obs.Trace) (*Projection, error) {
	defer tr.StartSpan("project")()
	if rmax > ix.r {
		return nil, fmt.Errorf("index: Rmax %v exceeds index radius %v", rmax, ix.r)
	}
	if len(keywords) == 0 {
		return nil, core.ErrNoKeywords
	}
	g := ix.g

	// Per-keyword gather (Algorithm 6 lines 2-9): W_i from invertedN,
	// E_i from invertedE, V_i = W_i ∪ endpoints(E_i); running unions
	// W', E', V' and the candidate-center intersection V_c.
	nodeSet := map[graph.NodeID]struct{}{}  // V'
	wSet := map[graph.NodeID]struct{}{}     // W'
	edgeSet := map[graph.EdgePair]float64{} // E'
	var vc map[graph.NodeID]struct{}        // V_c

	for _, kw := range keywords {
		terms := fulltext.Tokenize(kw)
		if len(terms) != 1 {
			return nil, fmt.Errorf("index: keyword %q does not tokenize to a single term", kw)
		}
		wi := ix.nodes.Nodes(terms[0])
		if len(wi) == 0 {
			// Missing keyword: no community can exist; project the
			// empty graph.
			return emptyProjection(g)
		}
		vi := map[graph.NodeID]struct{}{}
		for _, v := range wi {
			wSet[v] = struct{}{}
			vi[v] = struct{}{}
			nodeSet[v] = struct{}{}
		}
		// One poll per posting list: frequent terms carry edge lists in
		// the millions, the dominant cost of a projection.
		if err := bud.Poll(); err != nil {
			return nil, fmt.Errorf("index: projection aborted: %w", err)
		}
		for _, e := range ix.EdgePostings(terms[0]) {
			edgeSet[graph.EdgePair{From: e.From, To: e.To}] = e.Weight
			vi[e.From] = struct{}{}
			vi[e.To] = struct{}{}
			nodeSet[e.From] = struct{}{}
			nodeSet[e.To] = struct{}{}
		}
		if vc == nil {
			vc = vi
		} else {
			for v := range vc {
				if _, ok := vi[v]; !ok {
					delete(vc, v)
				}
			}
		}
	}
	if len(vc) == 0 {
		return emptyProjection(g)
	}

	// Materialize the union graph G'(V', E') to run the two virtual-
	// node passes on (lines 10-13).
	nodes := make([]graph.NodeID, 0, len(nodeSet))
	for v := range nodeSet {
		nodes = append(nodes, v)
	}
	sortNodeIDs(nodes)
	edges := make([]graph.EdgePair, 0, len(edgeSet))
	for e := range edgeSet {
		edges = append(edges, e)
	}
	sortEdgePairs(edges)
	union, err := graph.Extract(g, nodes, edges)
	if err != nil {
		return nil, err
	}

	tr.Add("project_union_nodes", int64(len(nodes)))
	tr.Add("project_union_edges", int64(len(edges)))

	// Forward pass from the candidate centers (virtual s), reverse pass
	// from all keyword nodes (virtual t).
	ws := sssp.NewWorkspace(union.G)
	ws.SetBudget(bud)
	ws.SetTrace(tr)
	fwd := sssp.NewResult(union.G.NumNodes())
	rev := sssp.NewResult(union.G.NumNodes())
	var centerSeeds, kwSeeds []graph.NodeID
	for v := range vc {
		lv, _ := union.FromParent(v)
		centerSeeds = append(centerSeeds, lv)
	}
	for v := range wSet {
		lv, _ := union.FromParent(v)
		kwSeeds = append(kwSeeds, lv)
	}
	ws.RunFromNodes(sssp.Forward, centerSeeds, rmax, fwd)
	ws.RunFromNodes(sssp.Reverse, kwSeeds, rmax, rev)
	if err := bud.Err(); err != nil {
		return nil, fmt.Errorf("index: projection aborted: %w", err)
	}

	// Line 14-15: keep nodes on short center→keyword paths, and the
	// edges among them.
	keep := map[graph.NodeID]struct{}{}
	var vp []graph.NodeID
	for _, lv := range fwd.Visited() {
		ds, _ := fwd.Dist(lv)
		dt, ok := rev.Dist(lv)
		if ok && ds+dt <= rmax {
			pv := union.ToParent[lv]
			keep[pv] = struct{}{}
			vp = append(vp, pv)
		}
	}
	sortNodeIDs(vp)
	var ep []graph.EdgePair
	for _, e := range edges {
		if _, ok := keep[e.From]; !ok {
			continue
		}
		if _, ok := keep[e.To]; !ok {
			continue
		}
		ep = append(ep, e)
	}
	sub, err := graph.Extract(g, vp, ep)
	if err != nil {
		return nil, err
	}
	tr.Add("project_nodes_kept", int64(len(vp)))
	tr.Add("project_nodes_dropped", int64(len(nodes)-len(vp)))
	tr.Add("project_edges_kept", int64(len(ep)))
	return &Projection{Sub: sub, Ratio: ratio(len(vp), g.NumNodes())}, nil
}

func emptyProjection(g *graph.Graph) (*Projection, error) {
	sub, err := graph.Extract(g, nil, []graph.EdgePair{})
	if err != nil {
		return nil, err
	}
	return &Projection{Sub: sub, Ratio: 0}, nil
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func sortNodeIDs(a []graph.NodeID) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

func sortEdgePairs(a []graph.EdgePair) {
	sort.Slice(a, func(i, j int) bool {
		if a[i].From != a[j].From {
			return a[i].From < a[j].From
		}
		return a[i].To < a[j].To
	})
}
