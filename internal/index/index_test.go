package index

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"commdb/internal/core"
	"commdb/internal/graph"
	"commdb/internal/sssp"
)

func randomKeywordGraph(t testing.TB, rng *rand.Rand, n, m, nkw int) (*graph.Graph, []string) {
	t.Helper()
	kws := make([]string, nkw)
	for i := range kws {
		kws[i] = fmt.Sprintf("k%d", i)
	}
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		var terms []string
		for _, kw := range kws {
			if rng.Intn(5) == 0 {
				terms = append(terms, kw)
			}
		}
		b.AddNode(fmt.Sprintf("n%d", i), terms...)
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), float64(rng.Intn(5)+1))
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g, kws
}

// TestEdgePostingsBruteForce checks invertedE against the definition:
// an edge belongs to term w's list iff both endpoints reach a node
// containing w within R.
func TestEdgePostingsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(25) + 5
		g, kws := randomKeywordGraph(t, rng, n, n*3, 3)
		R := float64(rng.Intn(8) + 2)
		ix, err := Build(g, BuildOptions{R: R})
		if err != nil {
			t.Fatal(err)
		}
		ws := sssp.NewWorkspace(g)
		res := sssp.NewResult(n)
		for _, kw := range kws {
			post := ix.Fulltext().Nodes(kw)
			if len(post) == 0 {
				if ix.EdgePostings(kw) != nil {
					t.Fatalf("term %s has no nodes but %d edges", kw, len(ix.EdgePostings(kw)))
				}
				continue
			}
			ws.RunFromNodes(sssp.Reverse, post, R, res)
			want := map[graph.EdgePair]bool{}
			for u := 0; u < n; u++ {
				if !res.Contains(graph.NodeID(u)) {
					continue
				}
				for _, e := range g.OutEdges(graph.NodeID(u)) {
					if res.Contains(e.To) {
						want[graph.EdgePair{From: graph.NodeID(u), To: e.To}] = true
					}
				}
			}
			got := ix.EdgePostings(kw)
			gotSet := map[graph.EdgePair]bool{}
			for _, e := range got {
				gotSet[graph.EdgePair{From: e.From, To: e.To}] = true
				if w, ok := g.EdgeWeight(e.From, e.To); !ok || w != e.Weight {
					t.Fatalf("posting (%d,%d) weight %v, graph %v", e.From, e.To, e.Weight, w)
				}
			}
			if len(gotSet) != len(want) {
				t.Fatalf("trial %d term %s: %d postings, want %d", trial, kw, len(gotSet), len(want))
			}
			for e := range want {
				if !gotSet[e] {
					t.Fatalf("trial %d term %s: missing edge %v", trial, kw, e)
				}
			}
		}
	}
}

// runAllOn enumerates COMM-all and returns cores in parent-graph IDs
// with costs, plus the sorted node sets of every community.
func runAllOn(t *testing.T, g *graph.Graph, toParent []graph.NodeID, kws []string, rmax float64) map[string]communityFacts {
	t.Helper()
	e, err := core.NewEngine(g, nil, kws, rmax)
	if err != nil {
		t.Fatal(err)
	}
	it := core.NewAll(e)
	out := map[string]communityFacts{}
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		mapped := make(core.Core, len(r.Core))
		for i, v := range r.Core {
			mapped[i] = mapID(v, toParent)
		}
		nodes := make([]graph.NodeID, len(r.Nodes))
		for i, v := range r.Nodes {
			nodes[i] = mapID(v, toParent)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		centers := make([]graph.NodeID, len(r.Cnodes))
		for i, v := range r.Cnodes {
			centers[i] = mapID(v, toParent)
		}
		sort.Slice(centers, func(i, j int) bool { return centers[i] < centers[j] })
		key := mapped.Key()
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate core %s", key)
		}
		out[key] = communityFacts{cost: r.Cost, nodes: nodes, centers: centers}
		if len(out) > 100000 {
			t.Fatal("runaway enumeration")
		}
	}
}

type communityFacts struct {
	cost    float64
	nodes   []graph.NodeID
	centers []graph.NodeID
}

func mapID(v graph.NodeID, toParent []graph.NodeID) graph.NodeID {
	if toParent == nil {
		return v
	}
	return toParent[v]
}

// TestProjectionEquivalence is the paper's Section VI guarantee: an
// l-keyword query answered on the projected graph returns exactly the
// communities of the full graph — same cores, costs, centers, and node
// sets — for any Rmax ≤ R.
func TestProjectionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(521))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(30) + 6
		g, kws := randomKeywordGraph(t, rng, n, n*3, 2)
		R := float64(rng.Intn(8) + 3)
		rmax := R - float64(rng.Intn(3))
		ix, err := Build(g, BuildOptions{R: R})
		if err != nil {
			t.Fatal(err)
		}
		proj, err := ix.Project(kws, rmax)
		if err != nil {
			t.Fatal(err)
		}
		direct := runAllOn(t, g, nil, kws, rmax)
		projected := runAllOn(t, proj.Sub.G, proj.Sub.ToParent, kws, rmax)

		if len(direct) != len(projected) {
			t.Fatalf("trial %d (n=%d R=%v rmax=%v, proj %d nodes): direct %d communities, projected %d",
				trial, n, R, rmax, proj.Sub.G.NumNodes(), len(direct), len(projected))
		}
		for key, want := range direct {
			got, ok := projected[key]
			if !ok {
				t.Fatalf("trial %d: core %s missing from projected run", trial, key)
			}
			if math.Abs(got.cost-want.cost) > 1e-9 {
				t.Fatalf("trial %d core %s: projected cost %v, direct %v", trial, key, got.cost, want.cost)
			}
			if !nodeSlicesEqual(got.nodes, want.nodes) {
				t.Fatalf("trial %d core %s: projected nodes %v, direct %v", trial, key, got.nodes, want.nodes)
			}
			if !nodeSlicesEqual(got.centers, want.centers) {
				t.Fatalf("trial %d core %s: projected centers %v, direct %v", trial, key, got.centers, want.centers)
			}
		}
		// Projection must never be larger than the graph.
		if proj.Sub.G.NumNodes() > g.NumNodes() {
			t.Fatal("projection larger than parent")
		}
		if proj.Ratio < 0 || proj.Ratio > 1 {
			t.Fatalf("ratio %v out of range", proj.Ratio)
		}
	}
}

func nodeSlicesEqual(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestProjectionPaperExample: projecting the Fig. 4 graph for {a,b,c}
// with Rmax = 8 keeps the query answer identical and drops at least
// nothing essential.
func TestProjectionPaperExample(t *testing.T) {
	g, _ := core.PaperGraph()
	ix, err := Build(g, BuildOptions{R: 8})
	if err != nil {
		t.Fatal(err)
	}
	proj, err := ix.Project([]string{"a", "b", "c"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	direct := runAllOn(t, g, nil, []string{"a", "b", "c"}, 8)
	projected := runAllOn(t, proj.Sub.G, proj.Sub.ToParent, []string{"a", "b", "c"}, 8)
	if len(direct) != 5 || len(projected) != 5 {
		t.Fatalf("direct %d, projected %d, want 5", len(direct), len(projected))
	}
	for key, want := range direct {
		if got := projected[key]; math.Abs(got.cost-want.cost) > 1e-9 {
			t.Fatalf("core %s cost %v vs %v", key, got.cost, want.cost)
		}
	}
}

// TestProjectionMissingKeyword yields an empty graph.
func TestProjectionMissingKeyword(t *testing.T) {
	g, _ := core.PaperGraph()
	ix, err := Build(g, BuildOptions{R: 8})
	if err != nil {
		t.Fatal(err)
	}
	proj, err := ix.Project([]string{"a", "zzz"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Sub.G.NumNodes() != 0 {
		t.Fatalf("projection for absent keyword has %d nodes", proj.Sub.G.NumNodes())
	}
}

// TestProjectionErrors: Rmax beyond R, no keywords, bad keyword.
func TestProjectionErrors(t *testing.T) {
	g, _ := core.PaperGraph()
	ix, err := Build(g, BuildOptions{R: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Project([]string{"a"}, 6); err == nil {
		t.Fatal("Rmax beyond R should error")
	}
	if _, err := ix.Project(nil, 5); err == nil {
		t.Fatal("no keywords should error")
	}
	if _, err := ix.Project([]string{"two words"}, 5); err == nil {
		t.Fatal("multi-term keyword should error")
	}
	if _, err := Build(g, BuildOptions{R: -1}); err == nil {
		t.Fatal("negative R should error")
	}
}

// TestBuildDeterministic: builds with different worker counts produce
// identical postings.
func TestBuildDeterministic(t *testing.T) {
	g, kws := randomKeywordGraph(t, rand.New(rand.NewSource(541)), 40, 160, 3)
	a, err := Build(g, BuildOptions{R: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, BuildOptions{R: 6, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, kw := range kws {
		pa, pb := a.EdgePostings(kw), b.EdgePostings(kw)
		if len(pa) != len(pb) {
			t.Fatalf("term %s: %d vs %d postings", kw, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("term %s posting %d differs: %v vs %v", kw, i, pa[i], pb[i])
			}
		}
	}
}

// TestMinPostingsSkips: rare terms can be excluded from invertedE.
func TestMinPostingsSkips(t *testing.T) {
	g, _ := core.PaperGraph()
	ix, err := Build(g, BuildOptions{R: 8, MinPostings: 3})
	if err != nil {
		t.Fatal(err)
	}
	// "a" occurs on 2 nodes < 3: skipped. "c" occurs on 4 nodes: kept.
	if got := ix.EdgePostings("a"); got != nil {
		t.Fatalf("term below MinPostings has %d edges indexed", len(got))
	}
	if got := ix.EdgePostings("c"); len(got) == 0 {
		t.Fatal("frequent term should be indexed")
	}
}

// TestStatsAndAccessors covers the reporting surface.
func TestStatsAndAccessors(t *testing.T) {
	g, _ := core.PaperGraph()
	ix, err := Build(g, BuildOptions{R: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Graph() != g || ix.R() != 8 {
		t.Fatal("accessors")
	}
	if ix.Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
	s := ix.ComputeStats()
	if s.Terms != g.Dict().Size() || s.EdgeLists == 0 || s.TotalEdges == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BuildTime <= 0 {
		t.Fatal("BuildTime should be recorded")
	}
	if ix.EdgePostings("nonexistent") != nil {
		t.Fatal("unknown term should have nil postings")
	}
}

// BenchmarkIndexBuild measures one full invertedN+invertedE build over
// a mid-size random graph — the paper's one-time indexing cost.
func BenchmarkIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	gb := graph.NewBuilder()
	words := make([]string, 50)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", i)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		var ts []string
		for _, w := range words {
			if rng.Intn(40) == 0 {
				ts = append(ts, w)
			}
		}
		gb.AddNode("", ts...)
	}
	for i := 0; i < n*4; i++ {
		gb.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), rng.Float64()*4+1)
	}
	g, err := gb.Freeze()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, BuildOptions{R: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProject measures Algorithm 6 alone on the same graph.
func BenchmarkProject(b *testing.B) {
	rng := rand.New(rand.NewSource(98))
	g, kws := randomKeywordGraph(b, rng, 5000, 20000, 3)
	ix, err := Build(g, BuildOptions{R: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Project(kws[:2], 7); err != nil {
			b.Fatal(err)
		}
	}
}
