// Package index implements Section VI of the paper: the two inverted
// indexes (invertedN: keyword → nodes; invertedE: keyword → edges whose
// endpoints both lie within R of a node containing the keyword) and the
// GraphProjection algorithm (Algorithm 6) that cuts a small query-
// specific subgraph G_P out of the database graph such that any
// l-keyword query with Rmax ≤ R returns the same communities on G_P as
// on G_D.
//
// Projection preserves every distance that determines community
// membership, centers, and costs. The one thing it may drop is an
// induced community edge that lies on no short center→keyword path;
// callers that materialize communities therefore re-induce edges over
// the parent graph (the public API does this), making results exactly
// equal to an unprojected run — a property the tests assert.
package index

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"commdb/internal/fulltext"
	"commdb/internal/govern"
	"commdb/internal/graph"
	"commdb/internal/prof"
	"commdb/internal/sssp"
)

// WeightedEdge is an invertedE posting: one graph edge with its weight,
// self-contained so a projected graph can be rebuilt from the index
// alone (the paper notes G_D itself is then not needed).
type WeightedEdge struct {
	From, To graph.NodeID
	Weight   float64
}

// NodeDist records one settled node of a term's bounded Dijkstra with
// its shortest distance to the term's carriers. Lists are sorted by
// node ID for binary search and ordered merging.
type NodeDist struct {
	Node graph.NodeID
	Dist float64
}

// Index is the pair of inverted indexes for one database graph and a
// maximum supported query radius R.
type Index struct {
	g *graph.Graph
	r float64

	// nodes is invertedN, shared with full-text search.
	nodes *fulltext.Index
	// edges is invertedE, indexed by interned term ID.
	edges [][]WeightedEdge

	// dists, when built with KeepDistances, holds per term the settled
	// set of its bounded Dijkstra (every node within R of the term's
	// carriers, with its distance), sorted by node. It is an in-memory
	// sidecar for RebuildPartial's boundary-conditioned repair and is
	// never serialized — the artifact bytes are identical either way.
	dists [][]NodeDist

	buildTime time.Duration

	// foot caches the exact accounting tree; indexes are immutable
	// once built, so scrapes stay cheap.
	footOnce sync.Once
	foot     prof.Footprint
}

// BuildOptions tunes index construction.
type BuildOptions struct {
	// R is the largest Rmax the index must support.
	R float64
	// Workers bounds build parallelism; 0 uses GOMAXPROCS.
	Workers int
	// MinPostings skips invertedE lists for terms occurring on fewer
	// nodes than this (0 indexes every term). Queries for skipped terms
	// fall back to an un-projected search.
	MinPostings int
	// KeepDistances retains each term's settled distance set alongside
	// its posting list (memory on the order of the postings), enabling
	// the boundary-conditioned repair path of RebuildPartial. The
	// serialized artifact is unaffected.
	KeepDistances bool
	// Budget, when non-nil, governs the build — the longest single
	// operation in the system (one bounded Dijkstra per distinct term).
	// It is shared by all workers; when it trips, in-flight term runs
	// stop, no further terms are dispatched, and Build returns the stop
	// reason instead of a half-built index.
	Budget *govern.Budget
	// Stages, when non-nil, accumulates per-phase build timings
	// (fulltext scan, per-term Dijkstras; RebuildPartial adds its
	// remap/repair/recompute/merge phases). Worker time is summed
	// across workers, so parallel stages report CPU time, which can
	// exceed wall time. Nil costs nothing (see prof.Stages).
	Stages *prof.Stages
}

// Build constructs both inverted indexes. One bounded multi-source
// reverse Dijkstra runs per distinct term; terms are processed in
// parallel across workers.
func Build(g *graph.Graph, opt BuildOptions) (*Index, error) {
	if math.IsNaN(opt.R) || math.IsInf(opt.R, 0) {
		return nil, fmt.Errorf("index: non-finite radius %v", opt.R)
	}
	if opt.R < 0 {
		return nil, fmt.Errorf("index: negative radius %v", opt.R)
	}
	start := time.Now()
	ftEnd := opt.Stages.Timer("fulltext")
	ft := fulltext.Build(g)
	ftEnd()
	ix := &Index{
		g:     g,
		r:     opt.R,
		nodes: ft,
		edges: make([][]WeightedEdge, g.Dict().Size()),
	}
	if opt.KeepDistances {
		ix.dists = make([][]NodeDist, g.Dict().Size())
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct{ term int32 }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := sssp.NewWorkspace(g)
			ws.SetBudget(opt.Budget) // one shared, concurrency-safe budget
			res := sssp.NewResult(g.NumNodes())
			for j := range jobs {
				end := opt.Stages.Timer("term_dijkstra")
				ix.edges[j.term] = buildEdgeList(g, ws, res, ix.nodes.NodesByID(j.term), opt.R)
				if opt.KeepDistances {
					ix.dists[j.term] = extractDists(res)
				}
				end()
			}
		}()
	}
	for t := int32(0); int(t) < g.Dict().Size(); t++ {
		if opt.Budget.Err() != nil {
			break // stop dispatching; workers drain their empty runs
		}
		post := ix.nodes.NodesByID(t)
		if len(post) == 0 || len(post) < opt.MinPostings {
			continue
		}
		jobs <- job{term: t}
	}
	close(jobs)
	wg.Wait()
	if err := opt.Budget.Err(); err != nil {
		// A truncated edge list would silently drop community edges on
		// every later query; an aborted build is an error, not an index.
		return nil, fmt.Errorf("index: build aborted: %w", err)
	}
	ix.buildTime = time.Since(start)
	return ix, nil
}

// buildEdgeList computes invertedE for one term: every edge whose both
// endpoints reach a node of post within R.
func buildEdgeList(g *graph.Graph, ws *sssp.Workspace, res *sssp.Result, post []graph.NodeID, r float64) []WeightedEdge {
	ws.RunFromNodes(sssp.Reverse, post, r, res)
	var out []WeightedEdge
	for _, u := range res.Visited() {
		prev := graph.NodeID(-1)
		for _, e := range g.OutEdges(u) {
			if e.To == prev {
				continue // parallel edge: adjacency is sorted by (To,
				// Weight), so the first occurrence carries the minimum
				// weight, which is the only one shortest paths can use.
			}
			prev = e.To
			if res.Contains(e.To) {
				out = append(out, WeightedEdge{From: u, To: e.To, Weight: e.Weight})
			}
		}
	}
	// Canonical (From, To) order: Visited() settles in distance order, so
	// sort to make builds byte-stable for serialization and to give the
	// on-disk loader a strict monotonicity invariant to check against.
	sortPostings(out)
	return out
}

// sortPostings orders a posting list by (From, To). A concrete
// sort.Interface rather than sort.Slice: the reflective swapper showed
// up as a top allocator in build profiles, and this runs once per term.
func sortPostings(out []WeightedEdge) { sort.Sort(byFromTo(out)) }

type byFromTo []WeightedEdge

func (s byFromTo) Len() int      { return len(s) }
func (s byFromTo) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s byFromTo) Less(i, j int) bool {
	if s[i].From != s[j].From {
		return s[i].From < s[j].From
	}
	return s[i].To < s[j].To
}

// extractDists snapshots a run's settled set as a node-sorted distance
// list, the sidecar entry KeepDistances retains per term.
func extractDists(res *sssp.Result) []NodeDist {
	vis := res.Visited()
	if len(vis) == 0 {
		return nil
	}
	out := make([]NodeDist, len(vis))
	for i, v := range vis {
		d, _ := res.Dist(v)
		out[i] = NodeDist{Node: v, Dist: d}
	}
	sort.Sort(byNode(out))
	return out
}

type byNode []NodeDist

func (s byNode) Len() int           { return len(s) }
func (s byNode) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s byNode) Less(i, j int) bool { return s[i].Node < s[j].Node }

// Graph returns the indexed database graph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// R reports the largest supported query radius.
func (ix *Index) R() float64 { return ix.r }

// Fulltext exposes invertedN for keyword resolution.
func (ix *Index) Fulltext() *fulltext.Index { return ix.nodes }

// BuildTime reports how long Build took.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// EdgePostings returns invertedE for a term, or nil when the term was
// not indexed.
func (ix *Index) EdgePostings(term string) []WeightedEdge {
	id, ok := ix.g.Dict().ID(term)
	if !ok {
		return nil
	}
	return ix.edges[id]
}

// Bytes reports the exact retained memory of both inverted indexes
// (plus the distance sidecar when built with KeepDistances), the
// quantity the paper reports against the raw dataset size. It is the
// root total of Footprint.
func (ix *Index) Bytes() int64 { return ix.Footprint().Bytes }

// Footprint returns the exact accounting tree for the index:
// invertedN (delegated to fulltext), invertedE (24-byte slice headers
// in the outer array plus 16 bytes per weighted-edge posting), and the
// KeepDistances sidecar when present. Indexes are immutable once
// built, so the tree is computed once and cached.
func (ix *Index) Footprint() prof.Footprint {
	ix.footOnce.Do(func() {
		ftE := prof.Footprint{
			Name:  "invertedE",
			Bytes: prof.SliceBytes(cap(ix.edges), 24),
		}
		for _, es := range ix.edges {
			ftE.Bytes += int64(cap(es)) * 16
			ftE.Items += int64(len(es))
		}
		parts := []prof.Footprint{ix.nodes.Footprint(), ftE}
		if ix.dists != nil {
			sd := prof.Footprint{
				Name:  "dist_sidecar",
				Bytes: prof.SliceBytes(cap(ix.dists), 24),
			}
			for _, ds := range ix.dists {
				sd.Bytes += int64(cap(ds)) * 16
				sd.Items += int64(len(ds))
			}
			parts = append(parts, sd)
		}
		ix.foot = prof.Group("index", parts...)
		ix.foot.Items = int64(ix.g.Dict().Size())
	})
	return ix.foot
}

// Stats summarizes the index for reporting.
type Stats struct {
	Terms      int
	EdgeLists  int
	TotalEdges int64
	Bytes      int64
	BuildTime  time.Duration
}

// ComputeStats scans the index once.
func (ix *Index) ComputeStats() Stats {
	s := Stats{Terms: ix.g.Dict().Size(), Bytes: ix.Bytes(), BuildTime: ix.buildTime}
	for _, es := range ix.edges {
		if len(es) > 0 {
			s.EdgeLists++
			s.TotalEdges += int64(len(es))
		}
	}
	return s
}
