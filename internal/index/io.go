package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"commdb/internal/fulltext"
	"commdb/internal/graph"
)

// Binary serialization of the inverted edge index so the expensive
// build (one bounded shortest-path pass per distinct term — the 355s
// the paper reports for DBLP) is paid once. invertedN is not stored: it
// is reconstructed from the graph in a single scan on load.
//
// Format: magic "CDBX" | version | R bits | term count | per term:
// posting count then delta-coded (from, to) pairs with weight bits.

const (
	idxMagic   = "CDBX"
	idxVersion = 1
)

// Write serializes the index's invertedE and radius to w. The graph
// itself is serialized separately (graph.Write); Read checks that the
// two match.
func (ix *Index) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(idxMagic); err != nil {
		return err
	}
	writeUvarint(bw, idxVersion)
	writeFloat(bw, ix.r)
	writeUvarint(bw, uint64(len(ix.edges)))
	for _, posts := range ix.edges {
		writeUvarint(bw, uint64(len(posts)))
		prevFrom := int64(0)
		for _, e := range posts {
			// Postings are grouped by From ascending (built from the
			// settled order is not sorted; delta-code via zigzag).
			writeVarint(bw, int64(e.From)-prevFrom)
			prevFrom = int64(e.From)
			writeUvarint(bw, uint64(e.To))
			writeFloat(bw, e.Weight)
		}
	}
	return bw.Flush()
}

// ReadInto deserializes an index written by Write, attaching it to the
// graph it was built from. The term count must match the graph's
// dictionary.
func ReadInto(r io.Reader, g *graph.Graph) (*Index, error) {
	start := time.Now()
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(magic) != idxMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ver != idxVersion {
		return nil, fmt.Errorf("index: unsupported version %d", ver)
	}
	radius, err := readFloat(br)
	if err != nil {
		return nil, err
	}
	terms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if int(terms) != g.Dict().Size() {
		return nil, fmt.Errorf("index: built over %d terms, graph has %d — wrong graph?",
			terms, g.Dict().Size())
	}
	ix := &Index{
		g:     g,
		r:     radius,
		nodes: fulltext.Build(g),
		edges: make([][]WeightedEdge, terms),
	}
	n := int64(g.NumNodes())
	for t := uint64(0); t < terms; t++ {
		cnt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if cnt == 0 {
			continue
		}
		capHint := int(cnt)
		if capHint > 1<<16 {
			capHint = 1 << 16
		}
		posts := make([]WeightedEdge, 0, capHint)
		prevFrom := int64(0)
		for i := uint64(0); i < cnt; i++ {
			df, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			from := prevFrom + df
			prevFrom = from
			to, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			wt, err := readFloat(br)
			if err != nil {
				return nil, err
			}
			if from < 0 || from >= n || int64(to) >= n {
				return nil, fmt.Errorf("index: posting (%d,%d) outside graph", from, to)
			}
			posts = append(posts, WeightedEdge{From: graph.NodeID(from), To: graph.NodeID(to), Weight: wt})
		}
		ix.edges[t] = posts
	}
	ix.buildTime = time.Since(start) // load time stands in for build time
	return ix, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func writeFloat(w *bufio.Writer, f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	w.Write(buf[:])
}

func readFloat(r *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}
