package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"commdb/internal/fulltext"
	"commdb/internal/graph"
)

// Binary serialization of the inverted edge index so the expensive
// build (one bounded shortest-path pass per distinct term — the 355s
// the paper reports for DBLP) is paid once. invertedN is not stored: it
// is reconstructed from the graph in a single scan on load.
//
// Format v2 is fail-closed: a loader either reconstructs exactly the
// index that was written or returns an error wrapping ErrCorruptIndex
// — never a short-but-plausible index. Layout:
//
//	magic "CDBX"
//	header section:  version | R bits | term count | node count
//	                 | CRC32-C of the section
//	postings section: per term, posting count then (from, to, weight)
//	                 triples sorted by (from, to), from delta-coded
//	                 | CRC32-C of the section
//	footer magic "XBDC", then EOF (trailing bytes are corruption)
//
// On load every posting passes a sanity gate against the live graph:
// endpoints in bounds, (from, to) strictly increasing within a term,
// and the edge present in the graph with the exact stored weight — so
// an index from the wrong graph generation is rejected even when its
// checksums are intact. v1 files (no checksums) are rejected; rebuild
// them with cmd/indexbuild.
const (
	idxMagic   = "CDBX"
	idxFooter  = "XBDC"
	idxVersion = 2
)

// ErrCorruptIndex marks a serialized index that failed validation:
// truncated or flipped bytes, checksum mismatches, out-of-bounds or
// non-monotonic postings, trailing garbage. Loading such an artifact
// never yields a partial index; match with errors.Is. Corruption is a
// permanent property of the artifact — retrying the load cannot help.
var ErrCorruptIndex = errors.New("index: corrupt index artifact")

// ErrIndexMismatch marks a structurally valid index that was built
// over a different graph than the one it is being attached to. Like
// corruption it is permanent for the (artifact, graph) pair.
var ErrIndexMismatch = errors.New("index: index does not match graph")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// corruptf builds an ErrCorruptIndex-wrapped error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptIndex, fmt.Sprintf(format, args...))
}

// readErr classifies an I/O failure mid-load: any flavour of EOF means
// the artifact ended before its format said it would (truncation →
// corrupt); other errors (e.g. a device failure) pass through so
// callers can classify them as transient.
func readErr(err error, what string) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return corruptf("truncated while reading %s: %v", what, err)
	}
	return fmt.Errorf("index: reading %s: %w", what, err)
}

// cwriter accumulates a per-section CRC32-C over everything written.
type cwriter struct {
	bw  *bufio.Writer
	crc uint32
}

func (w *cwriter) write(p []byte) {
	w.bw.Write(p)
	w.crc = crc32.Update(w.crc, castagnoli, p)
}

func (w *cwriter) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.write(buf[:n])
}

func (w *cwriter) varint(v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.write(buf[:n])
}

func (w *cwriter) float(f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	w.write(buf[:])
}

// endSection emits the section's CRC (not itself checksummed) and
// resets the accumulator for the next section.
func (w *cwriter) endSection() {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], w.crc)
	w.bw.Write(buf[:])
	w.crc = 0
}

// creader mirrors cwriter: a CRC32-C accumulates over every byte the
// decoder consumes, compared against the stored value at each section
// boundary.
type creader struct {
	br  *bufio.Reader
	crc uint32
}

// ReadByte implements io.ByteReader for binary.ReadUvarint.
func (c *creader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		var one = [1]byte{b}
		c.crc = crc32.Update(c.crc, castagnoli, one[:])
	}
	return b, err
}

func (c *creader) full(p []byte) error {
	if _, err := io.ReadFull(c.br, p); err != nil {
		return err
	}
	c.crc = crc32.Update(c.crc, castagnoli, p)
	return nil
}

func (c *creader) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(c)
	if err != nil {
		return 0, readErr(err, what)
	}
	return v, nil
}

func (c *creader) varint(what string) (int64, error) {
	v, err := binary.ReadVarint(c)
	if err != nil {
		return 0, readErr(err, what)
	}
	return v, nil
}

func (c *creader) float(what string) (float64, error) {
	var buf [8]byte
	if err := c.full(buf[:]); err != nil {
		return 0, readErr(err, what)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// endSection reads the stored CRC (not fed to the accumulator),
// compares it against the computed one, and resets for the next
// section.
func (c *creader) endSection(name string) error {
	var buf [4]byte
	if _, err := io.ReadFull(c.br, buf[:]); err != nil {
		return readErr(err, name+" checksum")
	}
	stored := binary.LittleEndian.Uint32(buf[:])
	if stored != c.crc {
		return corruptf("%s section checksum mismatch (stored %08x, computed %08x)", name, stored, c.crc)
	}
	c.crc = 0
	return nil
}

// Write serializes the index's invertedE and radius to w. The graph
// itself is serialized separately (graph.Write); ReadInto checks that
// the two match. Postings are written in the sorted (From, To) order
// Build produces, which the loader verifies as a monotonicity gate.
func (ix *Index) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(idxMagic); err != nil {
		return err
	}
	cw := &cwriter{bw: bw}
	cw.uvarint(idxVersion)
	cw.float(ix.r)
	cw.uvarint(uint64(len(ix.edges)))
	cw.uvarint(uint64(ix.g.NumNodes()))
	cw.endSection()
	for _, posts := range ix.edges {
		cw.uvarint(uint64(len(posts)))
		prevFrom := int64(0)
		for _, e := range posts {
			cw.varint(int64(e.From) - prevFrom)
			prevFrom = int64(e.From)
			cw.uvarint(uint64(e.To))
			cw.float(e.Weight)
		}
	}
	cw.endSection()
	if _, err := bw.WriteString(idxFooter); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadInto deserializes an index written by Write, attaching it to the
// graph it was built from. Loading is fail-closed: any truncation,
// checksum mismatch, bounds violation, non-monotonic posting list,
// posting absent from g, or trailing garbage returns an error wrapping
// ErrCorruptIndex (or ErrIndexMismatch for a wrong-graph artifact) and
// no index. It never panics on hostile input.
func ReadInto(r io.Reader, g *graph.Graph) (*Index, error) {
	start := time.Now()
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, readErr(err, "magic")
	}
	if string(magic) != idxMagic {
		return nil, corruptf("bad magic %q", magic)
	}
	cr := &creader{br: br}
	ver, err := cr.uvarint("version")
	if err != nil {
		return nil, err
	}
	if ver != idxVersion {
		return nil, corruptf("unsupported version %d (want %d; rebuild with cmd/indexbuild)", ver, idxVersion)
	}
	radius, err := cr.float("radius")
	if err != nil {
		return nil, err
	}
	if math.IsNaN(radius) || math.IsInf(radius, 0) || radius < 0 {
		return nil, corruptf("non-finite or negative radius %v", radius)
	}
	terms, err := cr.uvarint("term count")
	if err != nil {
		return nil, err
	}
	if int(terms) != g.Dict().Size() {
		return nil, fmt.Errorf("%w: built over %d terms, graph has %d",
			ErrIndexMismatch, terms, g.Dict().Size())
	}
	nodes, err := cr.uvarint("node count")
	if err != nil {
		return nil, err
	}
	if int(nodes) != g.NumNodes() {
		return nil, fmt.Errorf("%w: built over %d nodes, graph has %d",
			ErrIndexMismatch, nodes, g.NumNodes())
	}
	if err := cr.endSection("header"); err != nil {
		return nil, err
	}

	ix := &Index{
		g:     g,
		r:     radius,
		nodes: fulltext.Build(g),
		edges: make([][]WeightedEdge, terms),
	}
	n := int64(g.NumNodes())
	for t := uint64(0); t < terms; t++ {
		cnt, err := cr.uvarint("posting count")
		if err != nil {
			return nil, err
		}
		if cnt == 0 {
			continue
		}
		capHint := int(cnt)
		if capHint > 1<<16 {
			capHint = 1 << 16
		}
		posts := make([]WeightedEdge, 0, capHint)
		prevFrom, prevTo := int64(0), int64(-1)
		for i := uint64(0); i < cnt; i++ {
			df, err := cr.varint("posting delta")
			if err != nil {
				return nil, err
			}
			from := prevFrom + df
			to64, err := cr.uvarint("posting target")
			if err != nil {
				return nil, err
			}
			to := int64(to64)
			wt, err := cr.float("posting weight")
			if err != nil {
				return nil, err
			}
			if from < 0 || from >= n || to < 0 || to >= n {
				return nil, corruptf("term %d posting (%d,%d) outside graph of %d nodes", t, from, to, n)
			}
			// Monotonicity: Build sorts each term's postings strictly by
			// (From, To), so any other order means corrupted deltas.
			if i > 0 && (from < prevFrom || (from == prevFrom && to <= prevTo)) {
				return nil, corruptf("term %d posting %d (%d,%d) breaks (from,to) order after (%d,%d)",
					t, i, from, to, prevFrom, prevTo)
			}
			prevFrom, prevTo = from, to
			// The live-graph gate: the posting must be a real edge with
			// the exact weight the build saw, or the artifact belongs to
			// another generation of the data.
			if w, ok := g.EdgeWeight(graph.NodeID(from), graph.NodeID(to)); !ok || w != wt {
				return nil, fmt.Errorf("%w: term %d posting (%d,%d,%v) is not an edge of the live graph",
					ErrIndexMismatch, t, from, to, wt)
			}
			posts = append(posts, WeightedEdge{From: graph.NodeID(from), To: graph.NodeID(to), Weight: wt})
		}
		ix.edges[t] = posts
	}
	if err := cr.endSection("postings"); err != nil {
		return nil, err
	}
	footer := make([]byte, 4)
	if _, err := io.ReadFull(br, footer); err != nil {
		return nil, readErr(err, "footer")
	}
	if string(footer) != idxFooter {
		return nil, corruptf("bad footer %q", footer)
	}
	// Trailing-garbage check: a well-formed artifact ends exactly at the
	// footer. Extra bytes mean a torn write or concatenation bug.
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, readErr(err, "end of file")
		}
		return nil, corruptf("trailing garbage after footer")
	}
	ix.buildTime = time.Since(start) // load time stands in for build time
	return ix, nil
}
