package index

import (
	"testing"

	"commdb/internal/core"
	"commdb/internal/prof"
)

func sumPartsRec(t *testing.T, f prof.Footprint) {
	t.Helper()
	if len(f.Parts) == 0 {
		return
	}
	var sum int64
	for _, p := range f.Parts {
		sum += p.Bytes
		sumPartsRec(t, p)
	}
	if f.Bytes != sum {
		t.Fatalf("%s: bytes %d != sum of parts %d", f.Name, f.Bytes, sum)
	}
}

func TestIndexFootprintExact(t *testing.T) {
	g, _ := core.PaperGraph()
	ix, err := Build(g, BuildOptions{R: 8, KeepDistances: true})
	if err != nil {
		t.Fatal(err)
	}
	f := ix.Footprint()
	sumPartsRec(t, f)
	if f.Name != "index" || f.Items != int64(g.Dict().Size()) {
		t.Fatalf("root = %+v", f)
	}

	ftE, ok := f.Find("invertedE")
	if !ok {
		t.Fatal("invertedE part missing")
	}
	wantE := prof.SliceBytes(cap(ix.edges), 24)
	var edgeItems int64
	for _, es := range ix.edges {
		wantE += int64(cap(es)) * 16
		edgeItems += int64(len(es))
	}
	if ftE.Bytes != wantE || ftE.Items != edgeItems {
		t.Fatalf("invertedE = %+v, want bytes %d items %d", ftE, wantE, edgeItems)
	}

	ftN, ok := f.Find("invertedN")
	if !ok {
		t.Fatal("invertedN part missing")
	}
	if ftN.Bytes != ix.Fulltext().Bytes() {
		t.Fatalf("invertedN bytes %d != fulltext Bytes %d", ftN.Bytes, ix.Fulltext().Bytes())
	}

	if _, ok := f.Find("dist_sidecar"); !ok {
		t.Fatal("KeepDistances build should report a dist_sidecar part")
	}
	if ix.Bytes() != f.Bytes {
		t.Fatalf("Bytes() = %d, footprint total %d", ix.Bytes(), f.Bytes)
	}

	// Without KeepDistances there is no sidecar part.
	ix2, err := Build(g, BuildOptions{R: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix2.Footprint().Find("dist_sidecar"); ok {
		t.Fatal("plain build should not report a sidecar")
	}
}

// Build with a Stages accumulator reports the fulltext and per-term
// Dijkstra phases.
func TestBuildStageTimings(t *testing.T) {
	g, _ := core.PaperGraph()
	st := prof.NewStages()
	if _, err := Build(g, BuildOptions{R: 8, Stages: st}); err != nil {
		t.Fatal(err)
	}
	got := st.SnapshotMS()
	if _, ok := got["fulltext"]; !ok {
		t.Fatalf("fulltext stage missing: %v", got)
	}
	if _, ok := got["term_dijkstra"]; !ok {
		t.Fatalf("term_dijkstra stage missing: %v", got)
	}
}
