package index

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"commdb/internal/fulltext"
	"commdb/internal/graph"
	"commdb/internal/prof"
	"commdb/internal/sssp"
)

// Partial rebuild: construct the index for a new graph generation by
// recomputing only the terms a mutation batch can have affected and
// remapping every other term's posting list from the previous index.
//
// The caller (internal/delta) supplies three things it is responsible
// for getting right:
//
//   - perm, the old→new node-ID map (perm[v0] = v1, or -1 when the
//     tuple behind v0 was deleted). Because ToGraph assigns IDs in
//     (table order × row order) and mutations preserve row order, perm
//     is strictly increasing over surviving nodes — so a remapped
//     posting list is still sorted by (From, To) and serializes to the
//     exact bytes a from-scratch Build would produce.
//   - dirty, the set of term *words* whose invertedE may differ. Words,
//     not IDs: interning order shifts across generations, so IDs are
//     not comparable between the two dictionaries.
//   - region (optional), the changed region: every new-generation node
//     that can reach a changed tuple within R in either generation.
//     Outside it, no distance, no settled-set membership, and no edge
//     weight the index depends on can have changed. With a region and
//     an old index built with KeepDistances, dirty terms are repaired
//     by a Dijkstra restricted to the region (old distances provide
//     the boundary conditions) instead of a global per-term run — the
//     difference between O(changed neighborhood) and O(term ball).
//
// Soundness is the caller's radius-bounded dirty-set argument (see
// DESIGN.md); this function adds fail-closed checks for the two
// invariants it relies on: a clean term must exist in the old
// dictionary (a brand-new word can only be introduced by an inserted
// node, which the caller must have marked dirty), and a clean term's
// posting endpoints must all survive (a deleted endpoint was inside
// the term's R-ball, which again forces dirtiness). A violation
// returns an error — the caller falls back to a full Build — rather
// than a silently wrong index.

// PartialStats reports what a partial rebuild did, for observability
// and for the benchmarks that justify the delta path.
type PartialStats struct {
	TotalTerms int
	DirtyTerms int
	// RecomputedTerms took a full per-term Dijkstra; PatchedTerms were
	// repaired inside the changed region. Both are dirty terms.
	RecomputedTerms    int
	PatchedTerms       int
	RemappedTerms      int
	RecomputedPostings int64
	RemappedPostings   int64
}

// exitEdge is one edge leaving the changed region, precomputed once
// per batch: the region node it leaves, the weight, and the *previous
// generation* ID of its outside target, whose per-term old distance
// seeds the repair run as a boundary condition.
type exitEdge struct {
	from   graph.NodeID
	oldTo  graph.NodeID
	weight float64
}

// oldDistLookup is a worker-local dense view of one term's sidecar over
// the previous graph's node space. patchTerm probes old distances once
// per exit edge and once per candidate posting endpoint; binary search
// over the sidecar made those probes the top cost of a repair, so each
// term's list is stamped into a reusable array (O(|sidecar|), the same
// order as the remap that already walks it) and every probe becomes
// O(1). The epoch stamp makes re-use across terms allocation-free.
type oldDistLookup struct {
	dist  []float64
	epoch []int64
	cur   int64
}

// lookupPool recycles oldDistLookup scratch across batches: a fresh
// pair of node-sized arrays per worker per batch is pure zeroing cost
// (the epoch discipline never reads unstamped entries), so reuse is
// both safe and the cheapest allocation strategy.
var lookupPool sync.Pool

func newOldDistLookup(n int) *oldDistLookup {
	if l, ok := lookupPool.Get().(*oldDistLookup); ok && len(l.dist) >= n {
		return l
	}
	return &oldDistLookup{dist: make([]float64, n), epoch: make([]int64, n)}
}

// release returns the scratch to the pool.
func (l *oldDistLookup) release() {
	if l != nil {
		lookupPool.Put(l)
	}
}

// load makes d the current term's sidecar.
func (l *oldDistLookup) load(d []NodeDist) {
	l.cur++
	for _, nd := range d {
		l.epoch[nd.Node] = l.cur
		l.dist[nd.Node] = nd.Dist
	}
}

// get reports the loaded term's old distance of a previous-generation
// node, if it was settled.
func (l *oldDistLookup) get(v graph.NodeID) (float64, bool) {
	if l.epoch[v] != l.cur {
		return 0, false
	}
	return l.dist[v], true
}

// RebuildPartial builds the index for g, reusing old (built over the
// previous graph generation with the same options) for every term not
// in dirty. invertedN is always rebuilt — it is a single linear scan.
// region, when non-nil, enables the boundary-conditioned repair path
// for dirty terms (requires old to carry KeepDistances sidecars and
// both graphs to be free of node weights).
func RebuildPartial(g *graph.Graph, opt BuildOptions, old *Index, perm []graph.NodeID, dirty map[string]bool, region []bool) (*Index, PartialStats, error) {
	var st PartialStats
	if old == nil {
		return nil, st, fmt.Errorf("index: partial rebuild needs a previous index")
	}
	if opt.R != old.r {
		return nil, st, fmt.Errorf("index: partial rebuild radius %v differs from previous %v", opt.R, old.r)
	}
	if len(perm) != old.g.NumNodes() {
		return nil, st, fmt.Errorf("index: permutation covers %d nodes, previous graph has %d", len(perm), old.g.NumNodes())
	}
	if region != nil && len(region) != g.NumNodes() {
		return nil, st, fmt.Errorf("index: region covers %d nodes, graph has %d", len(region), g.NumNodes())
	}
	start := time.Now()
	ftEnd := opt.Stages.Timer("fulltext")
	ft := fulltext.Build(g)
	ftEnd()
	ix := &Index{
		g:     g,
		r:     opt.R,
		nodes: ft,
		edges: make([][]WeightedEdge, g.Dict().Size()),
	}
	if opt.KeepDistances {
		ix.dists = make([][]NodeDist, g.Dict().Size())
	}
	dict0, dict1 := old.g.Dict(), g.Dict()
	st.TotalTerms = dict1.Size()

	// The repair path needs old distances for boundary conditions and
	// weight-invariance outside the region, which node weights would
	// break (a path's cost would depend on nodes the region argument
	// does not cover).
	patchable := region != nil && old.dists != nil &&
		g.NodeWeights() == nil && old.g.NodeWeights() == nil

	// invPerm maps new→old IDs; every node outside the region survived
	// from the previous generation (inserted nodes are changed tuples,
	// which the caller's region must contain).
	var invPerm []graph.NodeID
	var exits []exitEdge
	if patchable {
		invPerm = make([]graph.NodeID, g.NumNodes())
		for i := range invPerm {
			invPerm[i] = -1
		}
		for v0, v1 := range perm {
			if v1 >= 0 {
				invPerm[v1] = graph.NodeID(v0)
			}
		}
		for v := 0; v < g.NumNodes(); v++ {
			if !region[v] {
				continue
			}
			for _, e := range g.OutEdges(graph.NodeID(v)) {
				if region[e.To] {
					continue
				}
				if invPerm[e.To] < 0 {
					return nil, st, fmt.Errorf("index: partial rebuild: inserted node %d outside the changed region", e.To)
				}
				exits = append(exits, exitEdge{from: graph.NodeID(v), oldTo: invPerm[e.To], weight: e.Weight})
			}
		}
	}

	// Clean terms first, inline: remapping is a linear copy, so the
	// worker pool is reserved for the per-term repairs and recomputes.
	remapEnd := opt.Stages.Timer("remap")
	var dirtyIDs []int32
	for t := int32(0); int(t) < dict1.Size(); t++ {
		word := dict1.Word(t)
		if dirty[word] {
			dirtyIDs = append(dirtyIDs, t)
			continue
		}
		t0, ok := dict0.ID(word)
		if !ok {
			return nil, st, fmt.Errorf("index: partial rebuild: clean term %q is absent from the previous index", word)
		}
		st.RemappedTerms++
		posts := old.edges[t0]
		if len(posts) > 0 {
			out := make([]WeightedEdge, len(posts))
			for i, e := range posts {
				nf, nt := perm[e.From], perm[e.To]
				if nf < 0 || nt < 0 {
					return nil, st, fmt.Errorf("index: partial rebuild: clean term %q posting (%d,%d) lost an endpoint", word, e.From, e.To)
				}
				out[i] = WeightedEdge{From: nf, To: nt, Weight: e.Weight}
			}
			ix.edges[t] = out
			st.RemappedPostings += int64(len(posts))
		}
		if opt.KeepDistances && old.dists != nil {
			if d := old.dists[t0]; len(d) > 0 {
				out := make([]NodeDist, len(d))
				for i, e := range d {
					nv := perm[e.Node]
					if nv < 0 {
						return nil, st, fmt.Errorf("index: partial rebuild: clean term %q settled node %d was deleted", word, e.Node)
					}
					out[i] = NodeDist{Node: nv, Dist: e.Dist}
				}
				ix.dists[t] = out
			}
		}
	}
	remapEnd()
	st.DirtyTerms = len(dirtyIDs)

	// Dirty terms: repaired inside the changed region where possible,
	// recomputed exactly as Build would otherwise — including the
	// MinPostings skip — so the result is bit-identical to a full build
	// with the same options.
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(dirtyIDs) && len(dirtyIDs) > 0 {
		workers = len(dirtyIDs)
	}
	type job struct {
		term  int32
		term0 int32 // old-generation term ID; -1 forces a full recompute
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := sssp.NewWorkspace(g)
			ws.SetBudget(opt.Budget)
			res := sssp.NewResult(g.NumNodes())
			var look *oldDistLookup
			if patchable {
				look = newOldDistLookup(old.g.NumNodes())
				defer look.release()
			}
			for j := range jobs {
				post := ix.nodes.NodesByID(j.term)
				if j.term0 >= 0 {
					end := opt.Stages.Timer("repair")
					look.load(old.dists[j.term0])
					edges, dd := patchTerm(
						g, ws, res, post, opt.R,
						old.dists[j.term0], old.edges[j.term0], look,
						perm, invPerm, region, exits, opt.KeepDistances, opt.Stages)
					ix.edges[j.term] = edges
					if ix.dists != nil {
						ix.dists[j.term] = dd
					}
					end()
					continue
				}
				end := opt.Stages.Timer("recompute")
				ix.edges[j.term] = buildEdgeList(g, ws, res, post, opt.R)
				if opt.KeepDistances {
					ix.dists[j.term] = extractDists(res)
				}
				end()
			}
		}()
	}
	patched := 0
	for _, t := range dirtyIDs {
		if opt.Budget.Err() != nil {
			break
		}
		post := ix.nodes.NodesByID(t)
		if len(post) == 0 || len(post) < opt.MinPostings {
			continue
		}
		j := job{term: t, term0: -1}
		if patchable {
			// A term new to this generation, or one skipped before
			// (no sidecar), has no boundary conditions: recompute.
			if t0, ok := dict0.ID(dict1.Word(t)); ok && old.dists[t0] != nil {
				j.term0 = t0
				patched++
			}
		}
		st.RecomputedTerms++
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	st.PatchedTerms = patched
	st.RecomputedTerms -= patched
	if err := opt.Budget.Err(); err != nil {
		return nil, st, fmt.Errorf("index: partial rebuild aborted: %w", err)
	}
	for _, t := range dirtyIDs {
		st.RecomputedPostings += int64(len(ix.edges[t]))
	}
	ix.buildTime = time.Since(start)
	return ix, st, nil
}

// patchTerm repairs one dirty term's posting list without leaving the
// changed region. The term's settled set and distances can only have
// changed inside the region (every changed edge has an endpoint among
// the changed tuples, and any ≤R path through one puts its origin in
// the region), so:
//
//   - distances inside the region are recomputed by a region-restricted
//     reverse Dijkstra whose seeds are the term's carriers in the
//     region (at distance 0) plus every region node with an edge to a
//     settled outside node (at that node's old distance plus the edge
//     weight — the boundary condition);
//   - postings with both endpoints outside the region are remapped
//     unchanged; every posting touching the region is re-derived from
//     the repaired distances and current edge weights.
//
// Float distance sums associate in the same order as a full build's
// Dijkstra (boundary seeds extend the old accumulation chains by one
// addition, exactly as a global run would), so the repaired posting
// list is bit-identical to a recomputed one — the golden tests assert
// this end to end.
func patchTerm(g *graph.Graph, ws *sssp.Workspace, res *sssp.Result, post []graph.NodeID, r float64,
	oldD []NodeDist, oldPost []WeightedEdge, look *oldDistLookup, perm, invPerm []graph.NodeID,
	region []bool, exits []exitEdge, keep bool, stages *prof.Stages) ([]WeightedEdge, []NodeDist) {

	seeds := make([]sssp.Seed, 0, len(exits)+8)
	for _, c := range post {
		if region[c] {
			seeds = append(seeds, sssp.Seed{Node: c})
		}
	}
	for _, e := range exits {
		if d, ok := look.get(e.oldTo); ok {
			seeds = append(seeds, sssp.Seed{Node: e.from, Dist: d + e.weight})
		}
	}
	ws.RunWithin(sssp.Reverse, seeds, r, res, region)

	// Membership in the term's settled set: repaired distances decide
	// inside the region, the old sidecar (presence = settled within R)
	// outside it.
	member := func(v graph.NodeID) bool {
		if region[v] {
			return res.Contains(v)
		}
		_, ok := look.get(invPerm[v])
		return ok
	}

	// Re-derive every posting with an endpoint in the region: edges
	// leaving a repaired node, plus edges entering one from outside.
	// Parallel-edge handling mirrors buildEdgeList: adjacency is sorted
	// by (neighbor, weight), so the first occurrence carries the
	// minimum weight.
	var adds []WeightedEdge
	for _, u := range res.Visited() {
		prev := graph.NodeID(-1)
		for _, e := range g.OutEdges(u) {
			if e.To == prev {
				continue
			}
			prev = e.To
			if member(e.To) {
				adds = append(adds, WeightedEdge{From: u, To: e.To, Weight: e.Weight})
			}
		}
		prev = -1
		for _, e := range g.InEdges(u) {
			if e.To == prev {
				continue
			}
			prev = e.To
			if !region[e.To] && member(e.To) {
				adds = append(adds, WeightedEdge{From: e.To, To: u, Weight: e.Weight})
			}
		}
	}
	sortPostings(adds)

	// Untouched postings: both endpoints survived outside the region.
	// Their membership and weight are unchanged (a weight change means
	// the head's in-edge set changed, putting it among the changed
	// tuples). perm is monotone, so the kept run stays sorted; kept and
	// added postings partition the result by "touches the region", so a
	// single ordered merge reproduces the canonical (From, To) order.
	mergeEnd := stages.Timer("merge")
	kept := make([]WeightedEdge, 0, len(oldPost))
	for _, e := range oldPost {
		nf, nt := perm[e.From], perm[e.To]
		if nf < 0 || nt < 0 || region[nf] || region[nt] {
			continue
		}
		kept = append(kept, WeightedEdge{From: nf, To: nt, Weight: e.Weight})
	}
	out := mergePostings(kept, adds)

	var dists []NodeDist
	if keep {
		keptD := make([]NodeDist, 0, len(oldD))
		for _, e := range oldD {
			nv := perm[e.Node]
			if nv < 0 || region[nv] {
				continue
			}
			keptD = append(keptD, NodeDist{Node: nv, Dist: e.Dist})
		}
		dists = mergeDists(keptD, extractDists(res))
	}
	mergeEnd()
	return out, dists
}

// mergePostings merges two (From, To)-sorted, key-disjoint posting
// lists into one.
func mergePostings(a, b []WeightedEdge) []WeightedEdge {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]WeightedEdge, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].From < b[j].From || (a[i].From == b[j].From && a[i].To < b[j].To) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// mergeDists merges two node-sorted, node-disjoint distance lists.
func mergeDists(a, b []NodeDist) []NodeDist {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]NodeDist, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Node < b[j].Node {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Equal reports whether two indexes hold identical radii and postings
// — the in-memory form of the byte-identity the golden tests assert on
// the serialized artifacts. Used by tests and the maintainer's
// self-checks.
func (ix *Index) Equal(other *Index) bool {
	if ix.r != other.r || len(ix.edges) != len(other.edges) {
		return false
	}
	for t := range ix.edges {
		a, b := ix.edges[t], other.edges[t]
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}
