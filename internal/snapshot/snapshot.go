// Package snapshot gives a serving process epoch-versioned hot reload
// of its graph+index: a running server atomically swaps in a freshly
// loaded Searcher while every in-flight query — including long NDJSON
// streams — finishes on the epoch it started on, with refcounted
// retirement of the old epoch once its last query drains.
//
// Loading is fail-closed. A reload that fails for any reason —
// corrupt or truncated artifact, wrong-graph index, I/O error, panic
// inside the loader — leaves the current epoch serving untouched and
// records the rejection; transient I/O errors are retried a bounded
// number of times with doubling backoff, while corruption and
// validation failures are permanent and fail immediately. After a
// successful swap the new epoch serves on probation: if its first
// queries hit internal errors or the SLO watchdog fires, the manager
// rolls back to the previous epoch, which is kept alive (one slot
// reference) until probation passes.
//
// Epoch lifecycle:
//
//	          Reload ok                 probation passes
//	serving ───────────► probation ───────────────────► committed
//	   ▲  ▲                  │                        (prev released)
//	   │  │ load fails       │ ErrInternal ≥ N, or SLO breach
//	   │  └──(no change)     ▼
//	   └──────────────── rolled back (prev restored, new epoch drains)
package snapshot

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"commdb"
	"commdb/internal/fault"
	"commdb/internal/index"
)

// Reload outcomes, the label values of commdb_reload_total.
const (
	OutcomeSuccess            = "success"
	OutcomeRejectedCorrupt    = "rejected_corrupt"
	OutcomeRejectedIO         = "rejected_io"
	OutcomeRejectedPanic      = "rejected_panic"
	OutcomeRejectedValidation = "rejected_validation"
	OutcomeRolledBack         = "rolled_back"
)

// Outcomes lists every reload outcome in a fixed order, so metric
// exports are deterministic and zero-valued series exist from the
// first scrape.
var Outcomes = []string{
	OutcomeSuccess,
	OutcomeRejectedCorrupt,
	OutcomeRejectedIO,
	OutcomeRejectedPanic,
	OutcomeRejectedValidation,
	OutcomeRolledBack,
}

// ErrLoadPanic wraps a panic recovered inside a loader; like
// corruption it is treated as permanent for the artifact.
var ErrLoadPanic = errors.New("snapshot: panic during load")

// ErrReloadInFlight is returned when a reload is requested while
// another one is still running.
var ErrReloadInFlight = errors.New("snapshot: reload already in flight")

// Loader produces the Searcher for a new epoch. The injector (nil in
// production) lets chaos tests corrupt the loader's reads; file-based
// loaders wrap their readers at fault.PointGraphRead /
// fault.PointIndexRead. A Loader must either return a fully validated
// Searcher or an error — never a partially initialized one.
type Loader func(inj *fault.Injector) (*commdb.Searcher, error)

// Config tunes a Manager. The zero value of every field is usable.
type Config struct {
	// Load produces each new epoch's Searcher. Required for Reload.
	Load Loader
	// Fault, when non-nil, injects faults into the load path (tests).
	Fault *fault.Injector
	// Retries bounds re-attempts after transient I/O errors (default 2).
	// Corruption, validation failures, and panics never retry.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt
	// (default 50ms).
	Backoff time.Duration
	// Probation is how many queries the new epoch must serve cleanly
	// before the previous epoch is released (default 20).
	Probation int
	// ProbationFailures is how many internal errors within probation
	// trigger rollback (default 1).
	ProbationFailures int
	// Logf, when non-nil, receives reload lifecycle messages.
	Logf func(format string, args ...any)
}

func (c *Config) retries() int {
	if c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return 2
	}
	return c.Retries
}

func (c *Config) backoff() time.Duration {
	if c.Backoff <= 0 {
		return 50 * time.Millisecond
	}
	return c.Backoff
}

func (c *Config) probation() int {
	if c.Probation <= 0 {
		return 20
	}
	return c.Probation
}

func (c *Config) probationFailures() int {
	if c.ProbationFailures <= 0 {
		return 1
	}
	return c.ProbationFailures
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Epoch is one immutable generation of graph+index. Queries hold it
// through a Lease; the manager holds one slot reference while the
// epoch is current (and, during probation, while it is previous), so
// refs hitting zero means no query can ever see it again.
type Epoch struct {
	id       int64
	searcher *commdb.Searcher
	source   string
	started  time.Time
	refs     atomic.Int64
}

// ID is the epoch's monotonically increasing number. It appears in
// responses, traces, and metrics; a client that sees two different IDs
// inside one streamed response has found a cross-epoch mixing bug.
func (e *Epoch) ID() int64 { return e.id }

// Searcher is the epoch's engine.
func (e *Epoch) Searcher() *commdb.Searcher { return e.searcher }

// acquire takes a query reference; it fails only when the epoch is
// already fully drained (refs hit zero), which a current epoch never is
// because the manager's slot reference pins it.
func (e *Epoch) acquire() bool {
	for {
		n := e.refs.Load()
		if n <= 0 {
			return false
		}
		if e.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (e *Epoch) release() {
	if e.refs.Add(-1) < 0 {
		panic("snapshot: epoch over-released")
	}
}

// Lease pins one epoch for the duration of one query. Acquire before
// touching the searcher (including cache lookups keyed by epoch) and
// Release when the response — the whole stream, not just the first
// byte — is done. Release is idempotent.
type Lease struct {
	e        *Epoch
	released atomic.Bool
}

// Epoch is the leased epoch's ID.
func (l *Lease) Epoch() int64 { return l.e.id }

// Searcher is the leased epoch's engine, valid until Release.
func (l *Lease) Searcher() *commdb.Searcher { return l.e.searcher }

// Release returns the query reference. Idempotent.
func (l *Lease) Release() {
	if l.released.CompareAndSwap(false, true) {
		l.e.release()
	}
}

// Manager owns the current epoch and runs the reload state machine.
// All methods are safe for concurrent use.
type Manager struct {
	cfg Config

	cur atomic.Pointer[Epoch]

	// mu serializes reloads, rollbacks and commits — the transitions
	// that touch prev and the current pointer together.
	mu        sync.Mutex
	prev      *Epoch // kept alive during the current epoch's probation
	nextID    int64
	reloading atomic.Bool

	// probMu guards the probation window. Lock order: mu before probMu;
	// paths holding only probMu must release it before taking mu.
	probMu        sync.Mutex
	probActive    bool
	probEpoch     int64
	probRemaining int
	probFailures  int

	// statMu guards the outcome counters and last-reload record.
	statMu      sync.Mutex
	counts      map[string]int64
	lastOutcome string
	lastError   string
	lastAt      time.Time
}

// New returns a manager serving initial as epoch 1.
func New(initial *commdb.Searcher, cfg Config) *Manager {
	m := &Manager{cfg: cfg, nextID: 2, counts: make(map[string]int64, len(Outcomes))}
	e := &Epoch{id: 1, searcher: initial, source: "initial", started: time.Now()}
	e.refs.Store(1) // the manager's slot reference
	m.cur.Store(e)
	return m
}

// Acquire leases the current epoch. It always succeeds: the manager's
// slot reference keeps the current epoch acquirable, and the retry
// loop covers the instant where a swap retires the epoch between the
// load and the acquire.
func (m *Manager) Acquire() *Lease {
	for {
		e := m.cur.Load()
		if e.acquire() {
			return &Lease{e: e}
		}
	}
}

// Current returns the current epoch's ID without leasing it.
func (m *Manager) Current() int64 { return m.cur.Load().id }

// record counts an outcome and remembers the last reload's result.
func (m *Manager) record(outcome string, err error) {
	m.statMu.Lock()
	defer m.statMu.Unlock()
	m.counts[outcome]++
	m.lastOutcome = outcome
	m.lastAt = time.Now()
	if err != nil {
		m.lastError = err.Error()
	} else {
		m.lastError = ""
	}
}

// Counts snapshots the per-outcome reload counters, with every outcome
// present (zero if it never happened).
func (m *Manager) Counts() map[string]int64 {
	m.statMu.Lock()
	defer m.statMu.Unlock()
	out := make(map[string]int64, len(Outcomes))
	for _, o := range Outcomes {
		out[o] = m.counts[o]
	}
	return out
}

// Status is the /statsz epoch block.
type Status struct {
	// Epoch is the serving epoch's ID.
	Epoch int64 `json:"epoch"`
	// Source describes where the serving epoch came from.
	Source string `json:"source"`
	// StartedAt is when the serving epoch took over.
	StartedAt time.Time `json:"started_at"`
	// ActiveLeases counts queries currently pinned to the serving epoch.
	ActiveLeases int64 `json:"active_leases"`
	// PrevEpoch is the previous epoch's ID while it is retained for
	// rollback (0 once committed).
	PrevEpoch int64 `json:"prev_epoch,omitempty"`
	// Probation reports whether the serving epoch is still on probation.
	Probation bool `json:"probation"`
	// ProbationRemaining is how many clean queries remain before commit.
	ProbationRemaining int `json:"probation_remaining,omitempty"`
	// Reloads counts reload attempts by outcome.
	Reloads map[string]int64 `json:"reloads"`
	// LastOutcome, LastError, LastAt describe the most recent attempt.
	LastOutcome string    `json:"last_outcome,omitempty"`
	LastError   string    `json:"last_error,omitempty"`
	LastAt      time.Time `json:"last_at,omitzero"`
}

// Status snapshots the manager for /statsz.
func (m *Manager) Status() Status {
	e := m.cur.Load()
	st := Status{
		Epoch:     e.id,
		Source:    e.source,
		StartedAt: e.started,
		// refs includes the slot reference; leases are the rest.
		ActiveLeases: e.refs.Load() - 1,
		Reloads:      m.Counts(),
	}
	m.probMu.Lock()
	if m.probActive && m.probEpoch == e.id {
		st.Probation = true
		st.ProbationRemaining = m.probRemaining
	}
	m.probMu.Unlock()
	m.mu.Lock()
	if m.prev != nil {
		st.PrevEpoch = m.prev.id
	}
	m.mu.Unlock()
	m.statMu.Lock()
	st.LastOutcome, st.LastError, st.LastAt = m.lastOutcome, m.lastError, m.lastAt
	m.statMu.Unlock()
	return st
}

// LiveEpochs leases every epoch the manager is keeping alive: the
// serving epoch and, during a probation window, the retained previous
// epoch (current first). Taking the leases under mu — the lock every
// transition that moves the slot references holds — means both
// acquires hit epochs whose slot reference is still in place, so the
// refcount can never race to zero mid-acquire. Callers walk the
// searchers (e.g. to compute per-epoch memory footprints for
// /debug/memz) after this returns and must Release every lease.
func (m *Manager) LiveEpochs() []*Lease {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Lease, 0, 2)
	if cur := m.cur.Load(); cur.acquire() {
		out = append(out, &Lease{e: cur})
	}
	if m.prev != nil && m.prev.acquire() {
		out = append(out, &Lease{e: m.prev})
	}
	return out
}

// loadOnce runs the loader with panic containment: a panic anywhere in
// the load path becomes ErrLoadPanic instead of killing the process.
func (m *Manager) loadOnce() (s *commdb.Searcher, err error) {
	defer func() {
		if p := recover(); p != nil {
			s, err = nil, fmt.Errorf("%w: %v", ErrLoadPanic, p)
		}
	}()
	if err := m.cfg.Fault.Op(fault.PointLoad); err != nil {
		return nil, err
	}
	return m.cfg.Load(m.cfg.Fault)
}

// permanent reports whether a load error can never succeed on retry:
// corruption and mismatch are properties of the artifact, a panic is a
// bug. Everything else (missing file, device error, injected transient)
// is worth the configured retries.
func permanent(err error) bool {
	return errors.Is(err, index.ErrCorruptIndex) ||
		errors.Is(err, index.ErrIndexMismatch) ||
		errors.Is(err, ErrLoadPanic)
}

// classify maps a final load error to its reload outcome.
func classify(err error) string {
	switch {
	case errors.Is(err, index.ErrCorruptIndex):
		return OutcomeRejectedCorrupt
	case errors.Is(err, ErrLoadPanic):
		return OutcomeRejectedPanic
	case errors.Is(err, index.ErrIndexMismatch):
		return OutcomeRejectedValidation
	default:
		return OutcomeRejectedIO
	}
}

// Reload loads a new epoch and, if every gate passes, swaps it in as
// the serving epoch with a fresh probation window. On any failure the
// current epoch keeps serving and the outcome is recorded; the
// returned outcome is one of the Outcome constants. Reloads serialize;
// a Reload arriving while another runs fails fast with
// ErrReloadInFlight rather than queueing (the competing reload is
// already loading newer data).
func (m *Manager) Reload(ctx context.Context) (string, error) {
	if m.cfg.Load == nil {
		err := errors.New("snapshot: no loader configured")
		m.record(OutcomeRejectedValidation, err)
		return OutcomeRejectedValidation, err
	}
	if !m.reloading.CompareAndSwap(false, true) {
		return "", ErrReloadInFlight
	}
	defer m.reloading.Store(false)
	m.mu.Lock()
	defer m.mu.Unlock()

	// A reload during probation adjudicates it: the operator is moving
	// forward, so the probationary epoch is accepted and prev released.
	m.probMu.Lock()
	if m.probActive {
		m.probActive = false
		m.probMu.Unlock()
		m.finalizePrevLocked("superseded by new reload")
	} else {
		m.probMu.Unlock()
	}

	var s *commdb.Searcher
	var err error
	backoff := m.cfg.backoff()
	for attempt := 0; ; attempt++ {
		s, err = m.loadOnce()
		if err == nil || permanent(err) || attempt >= m.cfg.retries() {
			break
		}
		m.cfg.logf("snapshot: transient load failure (attempt %d/%d), retrying in %v: %v",
			attempt+1, m.cfg.retries()+1, backoff, err)
		select {
		case <-ctx.Done():
			err = fmt.Errorf("snapshot: reload canceled: %w", ctx.Err())
			m.record(OutcomeRejectedIO, err)
			return OutcomeRejectedIO, err
		case <-time.After(backoff):
		}
		backoff *= 2
	}
	if err != nil {
		outcome := classify(err)
		m.record(outcome, err)
		m.cfg.logf("snapshot: reload rejected (%s), epoch %d keeps serving: %v",
			outcome, m.cur.Load().id, err)
		return outcome, err
	}

	// Validation gate: the replacement must serve at least the query
	// radius the current epoch does, or queries that worked a second ago
	// would start failing after the swap.
	cur := m.cur.Load()
	if cur.searcher.Indexed() && s.Indexed() && s.IndexRadius() < cur.searcher.IndexRadius() {
		err := fmt.Errorf("snapshot: new index radius %v below serving radius %v",
			s.IndexRadius(), cur.searcher.IndexRadius())
		m.record(OutcomeRejectedValidation, err)
		m.cfg.logf("snapshot: %v; epoch %d keeps serving", err, cur.id)
		return OutcomeRejectedValidation, err
	}

	e := &Epoch{id: m.nextID, searcher: s, source: "reload", started: time.Now()}
	m.nextID++
	e.refs.Store(1)
	old := m.cur.Swap(e)
	// old keeps its slot reference and becomes prev: the rollback target
	// while the new epoch is on probation.
	m.prev = old
	m.probMu.Lock()
	m.probActive = true
	m.probEpoch = e.id
	m.probRemaining = m.cfg.probation()
	m.probFailures = 0
	m.probMu.Unlock()
	m.record(OutcomeSuccess, nil)
	m.cfg.logf("snapshot: epoch %d serving (probation: next %d queries), epoch %d retained for rollback",
		e.id, m.cfg.probation(), old.id)
	return OutcomeSuccess, nil
}

// finalizePrevLocked drops the previous epoch's slot reference,
// letting it drain. Caller holds m.mu.
func (m *Manager) finalizePrevLocked(why string) {
	if m.prev == nil {
		return
	}
	m.cfg.logf("snapshot: epoch %d released (%s)", m.prev.id, why)
	m.prev.release()
	m.prev = nil
}

// rollback restores prev as the serving epoch if badEpoch is still
// serving. The bad epoch loses its slot reference and drains as its
// in-flight queries finish — they complete on the epoch they started
// on, consistent to the last byte, just against data the manager no
// longer trusts.
func (m *Manager) rollback(badEpoch int64, why string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.cur.Load()
	if cur.id != badEpoch || m.prev == nil {
		return // a later reload already superseded the bad epoch
	}
	restored := m.prev
	m.prev = nil
	m.cur.Store(restored)
	cur.release() // drop the bad epoch's slot reference
	m.record(OutcomeRolledBack, fmt.Errorf("snapshot: epoch %d rolled back: %s", badEpoch, why))
	m.cfg.logf("snapshot: rolled back to epoch %d (%s); epoch %d draining", restored.id, why, badEpoch)
}

// ObserveQuery feeds the probation window: the serving layer reports
// each finished query's epoch and stop error. Internal errors
// (commdb.ErrInternal — recovered engine panics) count against the new
// epoch; enough of them trigger rollback, and a clean window commits
// the epoch and releases prev.
func (m *Manager) ObserveQuery(epochID int64, err error) {
	m.probMu.Lock()
	if !m.probActive || epochID != m.probEpoch {
		m.probMu.Unlock()
		return
	}
	if err != nil && errors.Is(err, commdb.ErrInternal) {
		m.probFailures++
	}
	m.probRemaining--
	if m.probFailures >= m.cfg.probationFailures() {
		bad := m.probEpoch
		m.probActive = false
		m.probMu.Unlock() // before taking m.mu: lock order is mu → probMu
		m.rollback(bad, fmt.Sprintf("%d internal errors in probation", m.cfg.probationFailures()))
		return
	}
	if m.probRemaining <= 0 {
		m.probActive = false
		m.probMu.Unlock()
		m.mu.Lock()
		m.finalizePrevLocked("probation passed")
		m.mu.Unlock()
		return
	}
	m.probMu.Unlock()
}

// NoteBreach reports an SLO watchdog breach. During probation it rolls
// the new epoch back; outside probation it is ignored (the watchdog
// already alerts through the collector).
func (m *Manager) NoteBreach() {
	m.probMu.Lock()
	if !m.probActive {
		m.probMu.Unlock()
		return
	}
	bad := m.probEpoch
	m.probActive = false
	m.probMu.Unlock()
	m.rollback(bad, "SLO watchdog breach in probation")
}

// Watch polls path's mtime every interval and triggers Reload when it
// changes, until ctx is done. It returns the number of reloads it
// triggered. Watch tolerates the path briefly not existing (the window
// inside an atomic rename).
func (m *Manager) Watch(ctx context.Context, path string, interval time.Duration) int {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	var last time.Time
	if fi, err := os.Stat(path); err == nil {
		last = fi.ModTime()
	}
	reloads := 0
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return reloads
		case <-tick.C:
		}
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		if mt := fi.ModTime(); mt.After(last) {
			last = mt
			reloads++
			m.cfg.logf("snapshot: %s changed, reloading", path)
			if _, err := m.Reload(ctx); err != nil && !errors.Is(err, ErrReloadInFlight) {
				m.cfg.logf("snapshot: watch-triggered reload failed: %v", err)
			}
		}
	}
}

// IndexFileLoader builds a Loader that attaches a serialized index at
// path to an existing graph — the REPL's `reload` and commserve's
// -index-file mode. Reads pass through fault.PointIndexRead.
func IndexFileLoader(g *commdb.Graph, path string, opts ...commdb.Option) Loader {
	return func(inj *fault.Injector) (*commdb.Searcher, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("snapshot: open index: %w", err)
		}
		defer f.Close()
		all := append([]commdb.Option{commdb.WithIndexReader(inj.Reader(fault.PointIndexRead, f))}, opts...)
		return commdb.Open(g, all...)
	}
}

// GraphFileLoader builds a Loader that re-reads the graph from
// graphPath and rebuilds the index in process for radius r (r <= 0
// skips indexing) — commserve's -graph + -index mode, where no index
// artifact exists on disk. Reads pass through fault.PointGraphRead.
func GraphFileLoader(graphPath string, r float64, opts ...commdb.Option) Loader {
	return func(inj *fault.Injector) (*commdb.Searcher, error) {
		f, err := os.Open(graphPath)
		if err != nil {
			return nil, fmt.Errorf("snapshot: open graph: %w", err)
		}
		defer f.Close()
		g, err := commdb.ReadGraph(inj.Reader(fault.PointGraphRead, f))
		if err != nil {
			return nil, fmt.Errorf("snapshot: read graph: %w", err)
		}
		all := opts
		if r > 0 {
			all = append([]commdb.Option{commdb.WithIndex(r)}, opts...)
		}
		return commdb.Open(g, all...)
	}
}

// GraphIndexFileLoader builds a Loader that re-reads both artifacts —
// commserve's -graph + -index-file mode, the full production reload
// path. Both readers pass through their fault points.
func GraphIndexFileLoader(graphPath, indexPath string, opts ...commdb.Option) Loader {
	return func(inj *fault.Injector) (*commdb.Searcher, error) {
		gf, err := os.Open(graphPath)
		if err != nil {
			return nil, fmt.Errorf("snapshot: open graph: %w", err)
		}
		defer gf.Close()
		g, err := commdb.ReadGraph(inj.Reader(fault.PointGraphRead, gf))
		if err != nil {
			return nil, fmt.Errorf("snapshot: read graph: %w", err)
		}
		xf, err := os.Open(indexPath)
		if err != nil {
			return nil, fmt.Errorf("snapshot: open index: %w", err)
		}
		defer xf.Close()
		all := append([]commdb.Option{commdb.WithIndexReader(inj.Reader(fault.PointIndexRead, xf))}, opts...)
		return commdb.Open(g, all...)
	}
}
