package snapshot

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"commdb"
	"commdb/internal/fault"
	"commdb/internal/index"
)

// testGraph builds a tiny keyword graph: a ring where every node
// carries "alpha" and every other node carries "beta".
func testGraph(t *testing.T, n int) *commdb.Graph {
	t.Helper()
	b := commdb.NewGraphBuilder()
	ids := make([]commdb.NodeID, n)
	for i := 0; i < n; i++ {
		terms := []string{"alpha"}
		if i%2 == 0 {
			terms = append(terms, "beta")
		}
		ids[i] = b.AddNode(fmt.Sprintf("n%d", i), terms...)
	}
	for i := 0; i < n; i++ {
		b.AddEdge(ids[i], ids[(i+1)%n], 1)
		b.AddEdge(ids[(i+1)%n], ids[i], 1)
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testSearcher(t *testing.T, g *commdb.Graph, r float64) *commdb.Searcher {
	t.Helper()
	s, err := commdb.Open(g, commdb.WithIndex(r), commdb.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// writeIndexFile serializes s's index to dir and returns the path.
func writeIndexFile(t *testing.T, dir string, s *commdb.Searcher) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "test.cdbx")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLeaseSurvivesSwap(t *testing.T) {
	g := testGraph(t, 8)
	m := New(testSearcher(t, g, 4), Config{
		Load: func(*fault.Injector) (*commdb.Searcher, error) { return testSearcher(t, g, 4), nil },
	})
	lease := m.Acquire()
	if lease.Epoch() != 1 {
		t.Fatalf("initial epoch = %d, want 1", lease.Epoch())
	}
	oldSearcher := lease.Searcher()
	if out, err := m.Reload(context.Background()); err != nil || out != OutcomeSuccess {
		t.Fatalf("reload: %s, %v", out, err)
	}
	if m.Current() != 2 {
		t.Fatalf("current = %d, want 2", m.Current())
	}
	// The old lease still points at its epoch's searcher.
	if lease.Searcher() != oldSearcher || lease.Epoch() != 1 {
		t.Fatal("in-flight lease changed identity across a swap")
	}
	// New acquires see the new epoch.
	l2 := m.Acquire()
	if l2.Epoch() != 2 {
		t.Fatalf("new lease epoch = %d, want 2", l2.Epoch())
	}
	lease.Release()
	lease.Release() // idempotent
	l2.Release()
}

func TestFailedLoadLeavesEpochServing(t *testing.T) {
	g := testGraph(t, 8)
	boom := errors.New("disk on fire")
	m := New(testSearcher(t, g, 4), Config{
		Load:    func(*fault.Injector) (*commdb.Searcher, error) { return nil, boom },
		Retries: 1, Backoff: time.Millisecond,
	})
	out, err := m.Reload(context.Background())
	if out != OutcomeRejectedIO || !errors.Is(err, boom) {
		t.Fatalf("outcome %s err %v, want rejected_io wrapping boom", out, err)
	}
	if m.Current() != 1 {
		t.Fatalf("current = %d, want 1 (unchanged)", m.Current())
	}
	st := m.Status()
	if st.Reloads[OutcomeRejectedIO] != 1 || st.LastError == "" {
		t.Fatalf("status not recording rejection: %+v", st)
	}
}

func TestCorruptArtifactRejectedNoRetry(t *testing.T) {
	g := testGraph(t, 8)
	dir := t.TempDir()
	path := writeIndexFile(t, dir, testSearcher(t, g, 4))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation is unambiguous corruption (a flipped byte may instead
	// trip the wrong-graph gate, classified rejected_validation).
	if err := os.WriteFile(path, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	calls := 0
	inner := IndexFileLoader(g, path, commdb.WithParallelism(1))
	m := New(testSearcher(t, g, 4), Config{
		Load: func(inj *fault.Injector) (*commdb.Searcher, error) {
			calls++
			return inner(inj)
		},
		Retries: 3, Backoff: time.Millisecond,
	})
	out, err := m.Reload(context.Background())
	if out != OutcomeRejectedCorrupt || !errors.Is(err, index.ErrCorruptIndex) {
		t.Fatalf("outcome %s err %v, want rejected_corrupt", out, err)
	}
	if calls != 1 {
		t.Fatalf("corrupt artifact retried %d times; corruption is permanent", calls)
	}
	if m.Current() != 1 {
		t.Fatal("epoch changed after corrupt load")
	}
}

func TestTransientErrorRetriesThenHeals(t *testing.T) {
	g := testGraph(t, 8)
	inj := fault.New(7)
	inj.Arm(fault.PointLoad, fault.Plan{Mode: fault.Error, Fires: 2})
	m := New(testSearcher(t, g, 4), Config{
		Load:    func(*fault.Injector) (*commdb.Searcher, error) { return testSearcher(t, g, 4), nil },
		Fault:   inj,
		Retries: 2, Backoff: time.Millisecond,
	})
	out, err := m.Reload(context.Background())
	if out != OutcomeSuccess || err != nil {
		t.Fatalf("outcome %s err %v, want success after transient retries", out, err)
	}
	if inj.Fired(fault.PointLoad) != 2 {
		t.Fatalf("fired %d, want 2", inj.Fired(fault.PointLoad))
	}
}

func TestLoadPanicRejected(t *testing.T) {
	g := testGraph(t, 8)
	inj := fault.New(7)
	inj.Arm(fault.PointLoad, fault.Plan{Mode: fault.Panic})
	m := New(testSearcher(t, g, 4), Config{
		Load:  func(*fault.Injector) (*commdb.Searcher, error) { return testSearcher(t, g, 4), nil },
		Fault: inj,
	})
	out, err := m.Reload(context.Background())
	if out != OutcomeRejectedPanic || !errors.Is(err, ErrLoadPanic) {
		t.Fatalf("outcome %s err %v, want rejected_panic", out, err)
	}
	if m.Current() != 1 {
		t.Fatal("epoch changed after load panic")
	}
}

func TestRadiusValidationGate(t *testing.T) {
	g := testGraph(t, 8)
	m := New(testSearcher(t, g, 6), Config{
		Load: func(*fault.Injector) (*commdb.Searcher, error) { return testSearcher(t, g, 3), nil },
	})
	out, err := m.Reload(context.Background())
	if out != OutcomeRejectedValidation || err == nil {
		t.Fatalf("outcome %s err %v, want rejected_validation (radius shrank)", out, err)
	}
	if m.Current() != 1 {
		t.Fatal("epoch changed despite failed validation")
	}
}

func TestProbationRollbackOnInternalErrors(t *testing.T) {
	g := testGraph(t, 8)
	m := New(testSearcher(t, g, 4), Config{
		Load:      func(*fault.Injector) (*commdb.Searcher, error) { return testSearcher(t, g, 4), nil },
		Probation: 10, ProbationFailures: 2,
	})
	if out, _ := m.Reload(context.Background()); out != OutcomeSuccess {
		t.Fatal("reload failed")
	}
	if st := m.Status(); !st.Probation || st.PrevEpoch != 1 {
		t.Fatalf("expected probation with prev retained: %+v", st)
	}
	internal := fmt.Errorf("%w: query blew up", commdb.ErrInternal)
	m.ObserveQuery(2, internal)
	if m.Current() != 2 {
		t.Fatal("rolled back after one failure with threshold 2")
	}
	m.ObserveQuery(2, internal)
	if m.Current() != 1 {
		t.Fatalf("current = %d, want rollback to 1", m.Current())
	}
	if got := m.Counts()[OutcomeRolledBack]; got != 1 {
		t.Fatalf("rolled_back count = %d, want 1", got)
	}
	// Queries from the drained epoch no longer count against anything.
	m.ObserveQuery(2, internal)
}

func TestProbationPassesAndCommits(t *testing.T) {
	g := testGraph(t, 8)
	m := New(testSearcher(t, g, 4), Config{
		Load:      func(*fault.Injector) (*commdb.Searcher, error) { return testSearcher(t, g, 4), nil },
		Probation: 3,
	})
	if out, _ := m.Reload(context.Background()); out != OutcomeSuccess {
		t.Fatal("reload failed")
	}
	for i := 0; i < 3; i++ {
		m.ObserveQuery(2, nil)
	}
	st := m.Status()
	if st.Probation || st.PrevEpoch != 0 {
		t.Fatalf("probation should have committed: %+v", st)
	}
	// Non-internal errors (budget trips etc.) never count as failures.
	m2 := New(testSearcher(t, g, 4), Config{
		Load:      func(*fault.Injector) (*commdb.Searcher, error) { return testSearcher(t, g, 4), nil },
		Probation: 2,
	})
	m2.Reload(context.Background())
	m2.ObserveQuery(2, errors.New("budget exhausted"))
	m2.ObserveQuery(2, context.DeadlineExceeded)
	if m2.Current() != 2 {
		t.Fatal("ordinary query errors must not trigger rollback")
	}
}

func TestSLOBreachRollsBack(t *testing.T) {
	g := testGraph(t, 8)
	m := New(testSearcher(t, g, 4), Config{
		Load: func(*fault.Injector) (*commdb.Searcher, error) { return testSearcher(t, g, 4), nil },
	})
	m.NoteBreach() // outside probation: ignored
	if m.Current() != 1 {
		t.Fatal("breach outside probation changed epochs")
	}
	m.Reload(context.Background())
	m.NoteBreach()
	if m.Current() != 1 {
		t.Fatalf("current = %d, want rollback to 1 after breach", m.Current())
	}
}

func TestReloadDuringProbationCommitsPrev(t *testing.T) {
	g := testGraph(t, 8)
	m := New(testSearcher(t, g, 4), Config{
		Load:      func(*fault.Injector) (*commdb.Searcher, error) { return testSearcher(t, g, 4), nil },
		Probation: 100,
	})
	m.Reload(context.Background())
	m.Reload(context.Background())
	if m.Current() != 3 {
		t.Fatalf("current = %d, want 3", m.Current())
	}
	// Epoch 1 must be gone: the second reload adjudicated epoch 2's
	// probation, so prev is now epoch 2, not 1.
	if st := m.Status(); st.PrevEpoch != 2 {
		t.Fatalf("prev = %d, want 2", st.PrevEpoch)
	}
}

func TestConcurrentAcquireDuringReloads(t *testing.T) {
	g := testGraph(t, 8)
	m := New(testSearcher(t, g, 4), Config{
		Load:      func(*fault.Injector) (*commdb.Searcher, error) { return testSearcher(t, g, 4), nil },
		Probation: 1,
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l := m.Acquire()
				if l.Searcher() == nil {
					t.Error("lease with nil searcher")
				}
				m.ObserveQuery(l.Epoch(), nil)
				l.Release()
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if _, err := m.Reload(context.Background()); err != nil && !errors.Is(err, ErrReloadInFlight) {
			t.Errorf("reload %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	// Every epoch must balance: the current epoch holds exactly the slot
	// reference (plus prev's, if retained) once all leases are released.
	st := m.Status()
	if st.ActiveLeases != 0 {
		t.Fatalf("leaked %d leases", st.ActiveLeases)
	}
}

func TestWatchTriggersReload(t *testing.T) {
	g := testGraph(t, 8)
	dir := t.TempDir()
	path := writeIndexFile(t, dir, testSearcher(t, g, 4))
	m := New(testSearcher(t, g, 4), Config{
		Load: IndexFileLoader(g, path, commdb.WithParallelism(1)),
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int)
	go func() { done <- m.Watch(ctx, path, 10*time.Millisecond) }()
	time.Sleep(30 * time.Millisecond)
	// Touch the file with a strictly newer mtime.
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Current() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	triggered := <-done
	if triggered < 1 || m.Current() < 2 {
		t.Fatalf("watch triggered %d reloads, epoch %d; want >=1 and epoch >=2", triggered, m.Current())
	}
}

func TestFileLoaders(t *testing.T) {
	g := testGraph(t, 8)
	dir := t.TempDir()
	s := testSearcher(t, g, 4)
	idxPath := writeIndexFile(t, dir, s)
	graphPath := filepath.Join(dir, "g.cdbg")
	gf, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := commdb.WriteGraph(gf, g); err != nil {
		t.Fatal(err)
	}
	gf.Close()

	for _, tc := range []struct {
		name string
		load Loader
	}{
		{"index-file", IndexFileLoader(g, idxPath, commdb.WithParallelism(1))},
		{"graph-build", GraphFileLoader(graphPath, 4, commdb.WithParallelism(1))},
		{"graph+index", GraphIndexFileLoader(graphPath, idxPath, commdb.WithParallelism(1))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := tc.load(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !s.Indexed() || s.IndexRadius() != 4 {
				t.Fatalf("loader produced unindexed or wrong-radius searcher (r=%v)", s.IndexRadius())
			}
		})
	}

	// A fault-armed loader fails closed.
	inj := fault.New(3)
	// The whole small file arrives in the first Read, so fire on op 0.
	inj.Arm(fault.PointIndexRead, fault.Plan{Mode: fault.BitFlip})
	if _, err := IndexFileLoader(g, idxPath, commdb.WithParallelism(1))(inj); err == nil {
		t.Fatal("bit-flipped index load should fail")
	}
}
