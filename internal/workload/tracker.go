package workload

import (
	"sort"

	"commdb/internal/obs"
)

// hotMetricKeywords bounds how many keyword rows the Prometheus
// families expose (the full table stays available via /debug/workloadz
// and /statsz): label cardinality on a scrape endpoint must be bounded
// and small.
const hotMetricKeywords = 32

// Tracker glues the attribution aggregator to an optional journal: the
// server offers every completed query (executions and cache hits) to
// one Observe call. A nil *Tracker ignores everything.
type Tracker struct {
	attr *Attribution
	j    *Journal
}

// NewTracker builds a tracker; j may be nil (attribution only).
func NewTracker(cfg AttributionConfig, j *Journal) *Tracker {
	return &Tracker{attr: NewAttribution(cfg), j: j}
}

// Journal returns the attached journal, nil when recording is off.
func (t *Tracker) Journal() *Journal {
	if t == nil {
		return nil
	}
	return t.j
}

// Observe folds one completed query into the attribution tables and
// offers it to the journal.
func (t *Tracker) Observe(e Entry) {
	if t == nil {
		return
	}
	t.attr.Observe(e)
	t.j.Offer(e)
}

// Snapshot exports the tracker's state, topN bounding the hot-keyword
// table (0 = all).
func (t *Tracker) Snapshot(topN int) Snapshot {
	if t == nil {
		return Snapshot{}
	}
	snap := t.attr.SnapshotTop(topN)
	if t.j != nil {
		js := t.j.Stats()
		snap.Journal = &js
	}
	return snap
}

// Register wires the tracker into a metrics registry: process-wide
// commdb_workload_* counters/gauges plus commdb_keyword_* families
// labeled by term. Keyword samples are bounded to the hottest
// hotMetricKeywords rows and rendered in term order, so scrapes are
// deterministic and cardinality stays fixed.
func (t *Tracker) Register(reg *obs.Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.CounterFunc("commdb_workload_observed_total", "completed queries folded into the workload attribution tables",
		func() int64 { observed, _, _, _ := t.attr.Totals(); return observed })
	reg.CounterFunc("commdb_workload_cache_absorbed_total", "workload queries absorbed by the result cache",
		func() int64 { _, absorbed, _, _ := t.attr.Totals(); return absorbed })
	reg.GaugeFunc("commdb_workload_tracked_keywords", "keyword rows resident in the attribution table",
		func() float64 { _, _, _, tracked := t.attr.Totals(); return float64(tracked) })
	reg.CounterFunc("commdb_workload_evicted_keywords_total", "keyword rows evicted by the attribution table bound",
		func() int64 { _, _, evicted, _ := t.attr.Totals(); return evicted })
	if t.j != nil {
		reg.CounterFunc("commdb_workload_journal_records_total", "entries appended to the workload journal",
			func() int64 { return t.j.Stats().Records })
		reg.CounterFunc("commdb_workload_journal_sampled_out_total", "entries dropped by the journal sampling policy",
			func() int64 { return t.j.Stats().SampledOut })
		reg.CounterFunc("commdb_workload_journal_rotations_total", "workload journal rotations",
			func() int64 { return t.j.Stats().Rotations })
		reg.GaugeFunc("commdb_workload_journal_bytes", "current workload journal file size",
			func() float64 { return float64(t.j.Stats().Bytes) })
	}

	hot := func(value func(*KeywordStats) float64) func() []obs.LabeledSample {
		return func() []obs.LabeledSample {
			rows := t.attr.SnapshotTop(hotMetricKeywords).HotKeywords
			sort.Slice(rows, func(i, j int) bool { return rows[i].Term < rows[j].Term })
			out := make([]obs.LabeledSample, len(rows))
			for i := range rows {
				out[i] = obs.LabeledSample{
					Labels: []obs.Label{{Name: "term", Value: rows[i].Term}},
					Value:  value(&rows[i]),
				}
			}
			return out
		}
	}
	reg.LabeledCounterFunc("commdb_keyword_queries_total", "completed queries mentioning the keyword (hottest terms only)",
		hot(func(k *KeywordStats) float64 { return float64(k.Queries) }))
	reg.LabeledCounterFunc("commdb_keyword_cache_hits_total", "cache-absorbed queries mentioning the keyword (hottest terms only)",
		hot(func(k *KeywordStats) float64 { return float64(k.CacheHits) }))
	reg.LabeledCounterFunc("commdb_keyword_init_runs_total", "full keyword-set Dijkstra runs charged to the keyword (hottest terms only)",
		hot(func(k *KeywordStats) float64 { return float64(k.InitRuns) }))
	reg.LabeledCounterFunc("commdb_keyword_init_visits_total", "nodes settled by init runs charged to the keyword (hottest terms only)",
		hot(func(k *KeywordStats) float64 { return float64(k.InitVisits) }))
	reg.LabeledCounterFunc("commdb_keyword_init_heap_ops_total", "priority-queue operations of init runs charged to the keyword (hottest terms only)",
		hot(func(k *KeywordStats) float64 { return float64(k.InitHeapOps) }))
	reg.LabeledCounterFunc("commdb_keyword_init_ms_total", "engine-init wall milliseconds charged to the keyword (hottest terms only)",
		hot(func(k *KeywordStats) float64 { return k.InitWallMS }))
}
