package workload

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// JournalConfig tunes the flight recorder's durable half.
type JournalConfig struct {
	// Path is the journal file. Rotation renames it to Path + ".1"
	// (replacing any previous rotation) and starts a fresh file.
	Path string
	// MaxBytes bounds one journal file; a record that would push the
	// current file past the bound triggers rotation first. Default
	// 64 MiB.
	MaxBytes int64
	// SampleEvery records one in every M offered entries (default 1 =
	// record everything). The policy is deterministic count-based, not
	// random, so identical traffic produces identical journals.
	SampleEvery int
	// now overrides the clock in tests; entries with UnixMS already set
	// (synthetic workloads) are never stamped.
	now func() time.Time
}

func (c JournalConfig) withDefaults() JournalConfig {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// JournalStats is the journal's exported view, shown in /statsz and
// /debug/workloadz.
type JournalStats struct {
	Path       string `json:"path"`
	Records    int64  `json:"records"`
	SampledOut int64  `json:"sampled_out"`
	Rotations  int64  `json:"rotations"`
	Bytes      int64  `json:"bytes"`
	LastSeq    int64  `json:"last_seq"`
	// WriteErrors counts appends that failed at the filesystem; the
	// journal keeps serving (recording is best-effort observability,
	// never on a query's critical correctness path).
	WriteErrors int64 `json:"write_errors,omitempty"`
}

// Journal is the durable workload log: an append-only NDJSON file of
// CRC-framed entries with single rotation and deterministic sampling.
// Safe for concurrent use. Appends are single Write calls so a crash
// tears at most the final line; fsync happens on rotation and Close,
// not per record — the journal favors low overhead over zero loss,
// unlike the delta mutation log whose records are source-of-truth.
type Journal struct {
	cfg JournalConfig

	mu          sync.Mutex
	f           *os.File
	size        int64
	seq         int64
	offered     int64
	records     int64
	sampledOut  int64
	rotations   int64
	writeErrors int64
	closed      bool
}

// OpenJournal opens (creating if absent) the journal at cfg.Path and
// resumes the sequence from the existing tail.
func OpenJournal(cfg JournalConfig) (*Journal, error) {
	cfg = cfg.withDefaults()
	if cfg.Path == "" {
		return nil, errors.New("workload: journal path required")
	}
	f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{cfg: cfg, f: f}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	j.size = info.Size()
	if j.seq, j.size, err = resumeTail(f, j.size); err != nil {
		f.Close()
		return nil, fmt.Errorf("workload: resuming %s: %v", cfg.Path, err)
	}
	return j, nil
}

// resumeTail scans the tail of an existing journal for the last
// complete, valid record, truncates any torn final line (a crashed
// writer's half-append) so new records start at a line boundary, and
// returns the resumed sequence number plus the file's usable size.
// Only a bounded tail window is read, so reopening a large journal
// stays cheap.
func resumeTail(f *os.File, size int64) (seq, newSize int64, err error) {
	const window = 1 << 20
	off := size - window
	if off < 0 {
		off = 0
	}
	buf := make([]byte, size-off)
	if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
		return 0, size, err
	}
	end := bytes.LastIndexByte(buf, '\n')
	if end < 0 {
		if off > 0 {
			// A torn line longer than the window: leave the file alone and
			// keep appending (pathological; a reader will stop at the tear).
			return 0, size, nil
		}
		// Entirely torn (or empty): start the file over.
		if size > 0 {
			if err := f.Truncate(0); err != nil {
				return 0, size, err
			}
		}
		return 0, 0, nil
	}
	if keep := off + int64(end) + 1; keep < size {
		if err := f.Truncate(keep); err != nil {
			return 0, size, err
		}
		size = keep
	}
	buf = buf[:end+1]
	if off > 0 {
		// Landed mid-line: skip to the first boundary inside the window.
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			return 0, size, nil
		}
		buf = buf[nl+1:]
	}
	for len(buf) > 0 {
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			break
		}
		if e, err := DecodeEntry(buf[:nl]); err == nil {
			seq = e.Seq
		}
		buf = buf[nl+1:]
	}
	return seq, size, nil
}

// Offer submits one entry to the journal. The sampling policy may drop
// it; recorded entries get the next sequence number and a timestamp
// (when UnixMS is unset). Write failures are counted, not returned —
// the flight recorder never fails a query.
func (j *Journal) Offer(e Entry) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.offered++
	// Keep the first of every M so a fresh journal is never empty.
	if (j.offered-1)%int64(j.cfg.SampleEvery) != 0 {
		j.sampledOut++
		return
	}
	j.seq++
	e.Seq = j.seq
	if e.UnixMS == 0 {
		e.UnixMS = j.cfg.now().UnixMilli()
	}
	line, err := EncodeEntry(e)
	if err != nil {
		j.writeErrors++
		return
	}
	line = append(line, '\n')
	if j.size > 0 && j.size+int64(len(line)) > j.cfg.MaxBytes {
		j.rotateLocked()
	}
	n, err := j.f.Write(line)
	j.size += int64(n)
	if err != nil {
		j.writeErrors++
		return
	}
	j.records++
}

// rotateLocked renames the current file to Path+".1" (replacing any
// previous rotation) and starts a fresh one. On failure the journal
// keeps appending to the current file.
func (j *Journal) rotateLocked() {
	_ = j.f.Sync()
	if err := os.Rename(j.cfg.Path, j.cfg.Path+".1"); err != nil {
		j.writeErrors++
		return
	}
	f, err := os.OpenFile(j.cfg.Path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		// The old handle still points at the renamed file; keep using it
		// rather than lose records.
		j.writeErrors++
		return
	}
	j.f.Close()
	j.f = f
	j.size = 0
	j.rotations++
}

// Sync flushes the journal to stable storage.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. Further Offers are dropped.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() JournalStats {
	if j == nil {
		return JournalStats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{
		Path:        j.cfg.Path,
		Records:     j.records,
		SampledOut:  j.sampledOut,
		Rotations:   j.rotations,
		Bytes:       j.size,
		LastSeq:     j.seq,
		WriteErrors: j.writeErrors,
	}
}

// ReadJournal reads every valid entry from r. A final line without a
// newline — the torn tail of a crashed writer — is silently ignored,
// mirroring delta.ReadOps. A complete line that fails CRC or decode is
// an error: unlike a torn tail, it means corruption, not a crash.
// Sequence numbers must be strictly increasing (rotation means a file
// need not start at 1).
func ReadJournal(r io.Reader) ([]Entry, error) {
	br := bufio.NewReader(r)
	var out []Entry
	var lastSeq int64
	for lineNo := 1; ; lineNo++ {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: the record never committed. Drop it.
			return out, nil
		}
		if err != nil {
			return out, err
		}
		e, derr := DecodeEntry(bytes.TrimSuffix(line, []byte("\n")))
		if derr != nil {
			return out, fmt.Errorf("workload: line %d: %v", lineNo, derr)
		}
		if e.Seq <= lastSeq {
			return out, fmt.Errorf("workload: line %d: sequence %d not after %d", lineNo, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		out = append(out, e)
	}
}

// ReadJournalFile reads one journal file.
func ReadJournalFile(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJournal(f)
}
