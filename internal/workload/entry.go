// Package workload is the flight recorder of the serving stack: a
// durable, size-bounded NDJSON journal of completed queries plus an
// in-memory cost-attribution aggregator that charges engine-init spend
// to individual keywords.
//
// # Journal
//
// One Entry per completed query (cache hits included), one JSON object
// per line. Records carry a monotone sequence number and a CRC so a
// reader can prove integrity; a torn final line — the normal result of
// a crash mid-append — is silently dropped on read, mirroring the
// internal/delta mutation log. The journal rotates once, keeping the
// current file plus one predecessor (path + ".1"), and supports a
// deterministic 1-in-M sampling policy so high-QPS servers bound the
// recording cost.
//
// # Attribution
//
// The paper's community search pays for per-keyword reverse Dijkstras
// over each keyword's full node set — work that is query-independent
// and therefore shared by every query mentioning the keyword. The
// Attribution aggregator folds each query's per-keyword init costs
// (obs.Summary.KeywordInit) into rolling hot-keyword and query-class
// tables: the exact ranking a semantic cache or precomputed keyword
// artifact would want to warm from.
package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strconv"

	"commdb/internal/obs"
)

// Limits is the wire form of a query's resource limits, mirroring the
// server's LimitsSpec JSON schema so journal entries and search
// requests stay field-compatible without an import cycle.
type Limits struct {
	TimeoutMS       int64 `json:"timeout_ms,omitempty"`
	MaxRelaxations  int64 `json:"max_relaxations,omitempty"`
	MaxNeighborRuns int64 `json:"max_neighbor_runs,omitempty"`
	MaxCanTuples    int64 `json:"max_can_tuples,omitempty"`
	MaxHeapBytes    int64 `json:"max_heap_bytes,omitempty"`
	MaxResults      int64 `json:"max_results,omitempty"`
}

// IsZero reports whether no limit is set.
func (l Limits) IsZero() bool { return l == Limits{} }

// Algo values for Entry.Algo: which endpoint/enumerator served the
// query.
const (
	AlgoTopK = "topk"
	AlgoAll  = "all"
)

// Entry is one journal record: the query's identity (canonical
// fingerprint, keywords, operating point), how it was served, its
// outcome, and the per-keyword engine-init spend. The CRC field is
// always last on the wire (the encoder splices it in before the
// closing brace), covering every preceding byte of the line.
type Entry struct {
	// Seq is the journal-assigned monotone sequence number.
	Seq int64 `json:"seq"`
	// UnixMS is the query's completion time. Synthetic workloads (the
	// benchmark's canonical journal) use fixed values so journal bytes
	// are machine-independent.
	UnixMS  int64  `json:"unix_ms"`
	QueryID string `json:"qid,omitempty"`
	// Fingerprint is the canonical query fingerprint (Query.Fingerprint):
	// normalized keywords, rmax and cost function, limits excluded.
	Fingerprint string   `json:"fp"`
	Keywords    []string `json:"keywords"`
	Rmax        float64  `json:"rmax"`
	// Cost is the ranking aggregate: "sum" or "max".
	Cost string `json:"cost,omitempty"`
	// Algo is the serving endpoint: "topk" or "all".
	Algo string `json:"algo"`
	// K is the top-k bound (0 for COMM-all).
	K int `json:"k,omitempty"`
	// Limits are the request's effective (clamped) resource limits.
	Limits *Limits `json:"limits,omitempty"`
	// Epoch is the snapshot epoch that answered (0 without hot reload).
	Epoch int64 `json:"epoch,omitempty"`
	// Indexed reports whether the query ran through the inverted-index
	// projection.
	Indexed bool `json:"indexed,omitempty"`
	// CacheHit marks queries absorbed by the result cache: no engine
	// execution, no init spend.
	CacheHit bool `json:"cache_hit,omitempty"`
	Results  int  `json:"results"`
	Complete bool `json:"complete"`
	// StopReason is the stop reason when Complete is false.
	StopReason string  `json:"stop,omitempty"`
	LatencyMS  float64 `json:"latency_ms"`
	// InitMS is the engine_init span: total engine construction time,
	// keyword-separable and shared parts together.
	InitMS float64 `json:"init_ms,omitempty"`
	// KeywordInit is the keyword-separable init spend, sorted by term.
	KeywordInit []obs.KeywordCost `json:"keyword_init,omitempty"`
	// CRC is the IEEE-Castagnoli checksum of the encoded line with this
	// field absent. Zero in memory; set by the encoder, verified by the
	// decoder.
	CRC uint32 `json:"crc,omitempty"`
}

// crcTable is Castagnoli, matching the delta log and the index format.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

var crcKey = []byte(`,"crc":`)

// EncodeEntry renders e as one journal line (no trailing newline). The
// CRC is computed over the CRC-less encoding and spliced in before the
// closing brace, so the decoder can verify without re-marshaling (and
// without float round-trip hazards).
func EncodeEntry(e Entry) ([]byte, error) {
	e.CRC = 0 // omitempty: the field is absent from the checksummed bytes
	b, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	sum := crc32.Checksum(b, crcTable)
	line := make([]byte, 0, len(b)+len(crcKey)+11)
	line = append(line, b[:len(b)-1]...) // up to but excluding the final '}'
	line = append(line, crcKey...)
	line = strconv.AppendUint(line, uint64(sum), 10)
	line = append(line, '}')
	return line, nil
}

// DecodeEntry parses and verifies one journal line. The CRC suffix is
// located positionally (it is always the final field, so the last
// `,"crc":` occurrence is the real one even if a keyword contains the
// literal), stripped, and recomputed over the remaining bytes.
func DecodeEntry(line []byte) (Entry, error) {
	var e Entry
	i := bytes.LastIndex(line, crcKey)
	if i < 0 {
		return e, fmt.Errorf("workload: record has no crc field")
	}
	digits := line[i+len(crcKey):]
	if len(digits) < 2 || digits[len(digits)-1] != '}' {
		return e, fmt.Errorf("workload: malformed crc suffix")
	}
	digits = digits[:len(digits)-1]
	want, err := strconv.ParseUint(string(digits), 10, 32)
	if err != nil {
		return e, fmt.Errorf("workload: malformed crc suffix: %v", err)
	}
	// Reconstitute the checksummed bytes: everything before the suffix
	// plus the closing brace.
	buf := make([]byte, 0, i+1)
	buf = append(buf, line[:i]...)
	buf = append(buf, '}')
	if got := crc32.Checksum(buf, crcTable); got != uint32(want) {
		return e, fmt.Errorf("workload: crc mismatch (record %08x, computed %08x)", uint32(want), got)
	}
	if err := json.Unmarshal(line, &e); err != nil {
		return e, fmt.Errorf("workload: undecodable record: %v", err)
	}
	return e, nil
}

// EntryFromRecord builds the journal entry for one executed query from
// its capture record: identity, class inputs, outcome, latency and the
// per-keyword init spend from the trace. The caller fills the fields
// the record does not know — Algo, Cost, Limits, Epoch, UnixMS — and
// the journal assigns Seq.
func EntryFromRecord(rec *obs.QueryRecord) Entry {
	e := Entry{
		QueryID:     rec.QueryID,
		Fingerprint: rec.Fingerprint,
		Keywords:    rec.Keywords,
		Rmax:        rec.Rmax,
		K:           rec.K,
		Indexed:     rec.Indexed,
		Results:     rec.Results,
		Complete:    rec.StopReason == "",
		StopReason:  rec.StopReason,
		LatencyMS:   rec.TotalMS,
		UnixMS:      rec.Start.UnixMilli(),
	}
	if tr := rec.Trace; tr != nil {
		e.KeywordInit = tr.KeywordInit
		if sp, ok := tr.Span("engine_init"); ok {
			e.InitMS = sp.DurMS
		}
	}
	return e
}
