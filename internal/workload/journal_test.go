package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"commdb/internal/obs"
)

func testEntry(i int) Entry {
	return Entry{
		UnixMS:      int64(1000 + i*25),
		QueryID:     "q-" + strconv.Itoa(i),
		Fingerprint: "q1|rmax=6|cost=0|4:carl|6:hector",
		Keywords:    []string{"carl", "hector"},
		Rmax:        6,
		Cost:        "sum",
		Algo:        AlgoTopK,
		K:           10,
		Limits:      &Limits{MaxResults: 50},
		Results:     3,
		Complete:    true,
		LatencyMS:   1.25,
		InitMS:      0.5,
		KeywordInit: []obs.KeywordCost{
			{Term: "carl", Runs: 1, Visits: 7, Relaxations: 12, HeapOps: 14, WallMS: 0.2},
			{Term: "hector", Runs: 1, Visits: 5, Relaxations: 9, HeapOps: 10, WallMS: 0.15},
		},
	}
}

func TestEntryRoundTrip(t *testing.T) {
	e := testEntry(1)
	e.Seq = 42
	line, err := EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEntry(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.CRC == 0 {
		t.Fatal("decoded entry lost its CRC")
	}
	got.CRC = 0
	want := e
	want.CRC = 0
	a, _ := EncodeEntry(got)
	b, _ := EncodeEntry(want)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip mismatch:\n got %s\nwant %s", a, b)
	}
}

// TestEntryCRCSuffixAmbiguity plants the literal crc key inside a
// keyword: the decoder must still locate the real (final) suffix.
func TestEntryCRCSuffixAmbiguity(t *testing.T) {
	e := testEntry(1)
	e.Keywords = []string{`evil,"crc":123`, "hector"}
	e.KeywordInit = nil
	line, err := EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEntry(line)
	if err != nil {
		t.Fatalf("decode with embedded crc literal: %v", err)
	}
	if got.Keywords[0] != e.Keywords[0] {
		t.Fatalf("keyword mangled: %q", got.Keywords[0])
	}
}

func TestEntryCorruptionDetected(t *testing.T) {
	line, err := EncodeEntry(testEntry(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range line {
		mut := append([]byte(nil), line...)
		mut[i] ^= 0x20
		if mut[i] == line[i] {
			continue
		}
		got, derr := DecodeEntry(mut)
		if derr == nil {
			// A flip inside the CRC digits could in principle still parse;
			// it must then fail the checksum — reaching here means a
			// corrupt record decoded cleanly.
			t.Fatalf("byte %d flip decoded cleanly: %+v", i, got)
		}
	}
}

func writeJournal(t *testing.T, path string, n int, cfg JournalConfig) *Journal {
	t.Helper()
	cfg.Path = path
	j, err := OpenJournal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		j.Offer(testEntry(i))
	}
	return j
}

// TestJournalGoldenPrefix mirrors the delta log's recovery contract:
// every truncation prefix of a journal file must read back cleanly as
// a prefix of the recorded entries — a torn tail is dropped, never an
// error, never a wrong record.
func TestJournalGoldenPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.ndjson")
	j := writeJournal(t, path, 8, JournalConfig{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	complete, err := ReadJournal(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if len(complete) != 8 {
		t.Fatalf("recorded %d entries, want 8", len(complete))
	}
	for cut := 0; cut <= len(full); cut++ {
		got, err := ReadJournal(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("prefix %d/%d: %v", cut, len(full), err)
		}
		// The recovered entries must be exactly the complete lines inside
		// the prefix.
		want := bytes.Count(full[:cut], []byte("\n"))
		if len(got) != want {
			t.Fatalf("prefix %d: recovered %d entries, want %d", cut, len(got), want)
		}
		for k := range got {
			if got[k].Seq != complete[k].Seq || got[k].QueryID != complete[k].QueryID {
				t.Fatalf("prefix %d entry %d: got seq %d qid %s", cut, k, got[k].Seq, got[k].QueryID)
			}
		}
	}
}

func TestJournalRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.ndjson")
	// Lines are ~400 bytes; cap at 2KiB so 40 records rotate repeatedly.
	j := writeJournal(t, path, 40, JournalConfig{MaxBytes: 2 << 10})
	st := j.Stats()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Rotations == 0 {
		t.Fatal("expected at least one rotation")
	}
	if st.Bytes > 2<<10 {
		t.Fatalf("current file %d bytes exceeds bound", st.Bytes)
	}
	prev, err := ReadJournalFile(path + ".1")
	if err != nil {
		t.Fatalf("rotated file: %v", err)
	}
	cur, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(prev) == 0 || len(cur) == 0 {
		t.Fatalf("rotation split: prev=%d cur=%d", len(prev), len(cur))
	}
	// Sequence continuity across the boundary.
	if cur[0].Seq != prev[len(prev)-1].Seq+1 {
		t.Fatalf("seq gap across rotation: %d then %d", prev[len(prev)-1].Seq, cur[0].Seq)
	}
	if last := cur[len(cur)-1].Seq; last != st.LastSeq || st.LastSeq != 40 {
		t.Fatalf("last seq %d (stats %d), want 40", last, st.LastSeq)
	}
}

func TestJournalSampling(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.ndjson")
	j := writeJournal(t, path, 10, JournalConfig{SampleEvery: 3})
	st := j.Stats()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Offers 0,3,6,9 are kept (first of every 3).
	if len(got) != 4 || st.Records != 4 || st.SampledOut != 6 {
		t.Fatalf("kept %d (stats records=%d sampled_out=%d), want 4/4/6", len(got), st.Records, st.SampledOut)
	}
	if got[0].QueryID != "q-0" || got[1].QueryID != "q-3" {
		t.Fatalf("wrong sample: %s, %s", got[0].QueryID, got[1].QueryID)
	}
}

func TestJournalSeqResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.ndjson")
	j := writeJournal(t, path, 3, JournalConfig{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: torn final line on disk.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(JournalConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	j2.Offer(testEntry(100))
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if st := j2.Stats(); st.LastSeq != 4 {
		t.Fatalf("resumed seq %d, want 4", st.LastSeq)
	}
	// Reopen truncated the torn tail, so the whole file reads cleanly:
	// the 3 original records plus the resumed one at seq 4.
	got, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3].Seq != 4 || got[3].QueryID != "q-100" {
		t.Fatalf("resumed journal: %d entries, last %+v", len(got), got[len(got)-1])
	}
}

func TestJournalStampsTime(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.ndjson")
	fixed := time.UnixMilli(777)
	j, err := OpenJournal(JournalConfig{Path: path, now: func() time.Time { return fixed }})
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(0)
	e.UnixMS = 0
	j.Offer(e)
	j.Offer(testEntry(1)) // pre-stamped: must keep its own time
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].UnixMS != 777 || got[1].UnixMS != 1025 {
		t.Fatalf("timestamps %d, %d; want 777, 1025", got[0].UnixMS, got[1].UnixMS)
	}
}
