package workload

import (
	"sort"
	"sync"

	"commdb/internal/obs"
)

// KeywordStats is one keyword's rolling attribution row: how many
// queries mentioned it and the engine-init spend separably charged to
// it (full keyword-set Dijkstra runs).
type KeywordStats struct {
	Term    string `json:"term"`
	Queries int64  `json:"queries"`
	// CacheHits counts queries mentioning the term that the result
	// cache absorbed (no init spend paid).
	CacheHits   int64   `json:"cache_hits,omitempty"`
	InitRuns    int64   `json:"init_runs"`
	InitVisits  int64   `json:"init_visits"`
	InitRelax   int64   `json:"init_relaxations"`
	InitHeapOps int64   `json:"init_heap_ops"`
	InitWallMS  float64 `json:"init_wall_ms"`
}

// ClassStats is one query class's attribution row. SharedInitMS is the
// engine-init time not separable per keyword — projection and the
// aggregate-table build — i.e. init span minus the sum of per-keyword
// wall time; it is charged to the class as a whole.
type ClassStats struct {
	Class        string  `json:"class"`
	Queries      int64   `json:"queries"`
	CacheHits    int64   `json:"cache_hits"`
	Results      int64   `json:"results"`
	TotalMS      float64 `json:"total_ms"`
	InitMS       float64 `json:"init_ms"`
	KeywordMS    float64 `json:"keyword_init_ms"`
	SharedInitMS float64 `json:"shared_init_ms"`
}

// AttributionConfig bounds the aggregator.
type AttributionConfig struct {
	// MaxKeywords bounds the keyword table (default 512). When full,
	// the coldest row (least cumulative init wall time) is evicted.
	MaxKeywords int
}

func (c AttributionConfig) withDefaults() AttributionConfig {
	if c.MaxKeywords <= 0 {
		c.MaxKeywords = 512
	}
	return c
}

// Attribution is the in-memory cost-attribution aggregator. Safe for
// concurrent use; a nil *Attribution ignores every call.
type Attribution struct {
	cfg AttributionConfig

	mu            sync.Mutex
	kw            map[string]*KeywordStats
	classes       map[string]*ClassStats
	evicted       int64
	cacheAbsorbed int64
	observed      int64
}

// NewAttribution builds the aggregator.
func NewAttribution(cfg AttributionConfig) *Attribution {
	return &Attribution{
		cfg:     cfg.withDefaults(),
		kw:      make(map[string]*KeywordStats),
		classes: make(map[string]*ClassStats),
	}
}

// Observe folds one journal-shaped entry into the tables. Cache hits
// count toward keyword/class query totals and the absorption counter
// but carry no init spend (none was paid).
func (a *Attribution) Observe(e Entry) {
	if a == nil {
		return
	}
	class := obs.ClassKey(len(e.Keywords), e.Indexed)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.observed++
	if e.CacheHit {
		a.cacheAbsorbed++
	}

	for _, kw := range e.Keywords {
		ks := a.kwRowLocked(kw)
		ks.Queries++
		if e.CacheHit {
			ks.CacheHits++
		}
	}
	var kwWall float64
	for _, kc := range e.KeywordInit {
		ks := a.kwRowLocked(kc.Term)
		ks.InitRuns += kc.Runs
		ks.InitVisits += kc.Visits
		ks.InitRelax += kc.Relaxations
		ks.InitHeapOps += kc.HeapOps
		ks.InitWallMS += kc.WallMS
		kwWall += kc.WallMS
	}

	cs := a.classes[class]
	if cs == nil {
		cs = &ClassStats{Class: class}
		a.classes[class] = cs
	}
	cs.Queries++
	if e.CacheHit {
		cs.CacheHits++
	}
	cs.Results += int64(e.Results)
	cs.TotalMS += e.LatencyMS
	cs.InitMS += e.InitMS
	cs.KeywordMS += kwWall
	if shared := e.InitMS - kwWall; shared > 0 {
		cs.SharedInitMS += shared
	}
}

// kwRowLocked returns (creating, evicting if needed) term's row.
func (a *Attribution) kwRowLocked(term string) *KeywordStats {
	ks := a.kw[term]
	if ks != nil {
		return ks
	}
	if len(a.kw) >= a.cfg.MaxKeywords {
		// Evict the coldest row by cumulative init wall time, queries as
		// the tiebreak: recurring hot terms survive, one-off probes age
		// out.
		var victim string
		first := true
		for t, row := range a.kw {
			if first || row.InitWallMS < a.kw[victim].InitWallMS ||
				(row.InitWallMS == a.kw[victim].InitWallMS && row.Queries < a.kw[victim].Queries) {
				victim, first = t, false
			}
		}
		delete(a.kw, victim)
		a.evicted++
	}
	ks = &KeywordStats{Term: term}
	a.kw[term] = ks
	return ks
}

// Totals returns the scalar counters without materializing the tables
// (the metrics registry scrapes them individually).
func (a *Attribution) Totals() (observed, cacheAbsorbed, evicted int64, tracked int) {
	if a == nil {
		return 0, 0, 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.observed, a.cacheAbsorbed, a.evicted, len(a.kw)
}

// Snapshot is the aggregator's exported view.
type Snapshot struct {
	// Observed counts entries folded in; CacheAbsorbed the subset the
	// result cache served.
	Observed      int64 `json:"observed"`
	CacheAbsorbed int64 `json:"cache_absorbed"`
	// TrackedKeywords is the keyword table's occupancy;
	// EvictedKeywords counts rows dropped by the bound.
	TrackedKeywords int   `json:"tracked_keywords"`
	EvictedKeywords int64 `json:"evicted_keywords,omitempty"`
	// HotKeywords is the keyword table sorted hottest first (cumulative
	// init wall time, then queries, then term).
	HotKeywords []KeywordStats `json:"hot_keywords,omitempty"`
	// Classes are the per-class rows, sorted by class key.
	Classes []ClassStats `json:"classes,omitempty"`
	// Journal is the durable half's counters, present when a journal is
	// attached.
	Journal *JournalStats `json:"journal,omitempty"`
}

// SnapshotTop exports the tables, keeping the topN hottest keywords
// (0 = all).
func (a *Attribution) SnapshotTop(topN int) Snapshot {
	if a == nil {
		return Snapshot{}
	}
	a.mu.Lock()
	snap := Snapshot{
		Observed:        a.observed,
		CacheAbsorbed:   a.cacheAbsorbed,
		TrackedKeywords: len(a.kw),
		EvictedKeywords: a.evicted,
		HotKeywords:     make([]KeywordStats, 0, len(a.kw)),
		Classes:         make([]ClassStats, 0, len(a.classes)),
	}
	for _, ks := range a.kw {
		snap.HotKeywords = append(snap.HotKeywords, *ks)
	}
	for _, cs := range a.classes {
		snap.Classes = append(snap.Classes, *cs)
	}
	a.mu.Unlock()
	sort.Slice(snap.HotKeywords, func(i, j int) bool {
		a, b := snap.HotKeywords[i], snap.HotKeywords[j]
		if a.InitWallMS != b.InitWallMS {
			return a.InitWallMS > b.InitWallMS
		}
		if a.Queries != b.Queries {
			return a.Queries > b.Queries
		}
		return a.Term < b.Term
	})
	if topN > 0 && len(snap.HotKeywords) > topN {
		snap.HotKeywords = snap.HotKeywords[:topN]
	}
	sort.Slice(snap.Classes, func(i, j int) bool { return snap.Classes[i].Class < snap.Classes[j].Class })
	return snap
}
