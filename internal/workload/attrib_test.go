package workload

import (
	"strconv"
	"strings"
	"testing"

	"commdb/internal/obs"
)

func execEntry(keywords []string, initMS float64, kwInit []obs.KeywordCost) Entry {
	return Entry{
		Keywords:    keywords,
		Algo:        AlgoTopK,
		Indexed:     true,
		Results:     2,
		Complete:    true,
		LatencyMS:   5,
		InitMS:      initMS,
		KeywordInit: kwInit,
	}
}

func TestAttributionTables(t *testing.T) {
	a := NewAttribution(AttributionConfig{})
	a.Observe(execEntry([]string{"carl", "hector"}, 1.0, []obs.KeywordCost{
		{Term: "carl", Runs: 1, Visits: 10, WallMS: 0.4},
		{Term: "hector", Runs: 1, Visits: 4, WallMS: 0.2},
	}))
	a.Observe(execEntry([]string{"carl"}, 0.5, []obs.KeywordCost{
		{Term: "carl", Runs: 1, Visits: 10, WallMS: 0.3},
	}))
	hit := execEntry([]string{"carl"}, 0, nil)
	hit.CacheHit = true
	a.Observe(hit)

	snap := a.SnapshotTop(0)
	if snap.Observed != 3 || snap.CacheAbsorbed != 1 {
		t.Fatalf("observed=%d absorbed=%d", snap.Observed, snap.CacheAbsorbed)
	}
	if len(snap.HotKeywords) != 2 || snap.HotKeywords[0].Term != "carl" {
		t.Fatalf("hot keywords: %+v", snap.HotKeywords)
	}
	carl := snap.HotKeywords[0]
	if carl.Queries != 3 || carl.CacheHits != 1 || carl.InitRuns != 2 || carl.InitVisits != 20 {
		t.Fatalf("carl row: %+v", carl)
	}
	if carl.InitWallMS < 0.69 || carl.InitWallMS > 0.71 {
		t.Fatalf("carl wall %v", carl.InitWallMS)
	}

	// Two classes: kw2/indexed (1 query) and kw1/indexed (2 queries).
	if len(snap.Classes) != 2 {
		t.Fatalf("classes: %+v", snap.Classes)
	}
	var kw1 *ClassStats
	for i := range snap.Classes {
		if snap.Classes[i].Class == "kw1/indexed" {
			kw1 = &snap.Classes[i]
		}
	}
	if kw1 == nil || kw1.Queries != 2 || kw1.CacheHits != 1 {
		t.Fatalf("kw1 class: %+v", kw1)
	}
	// Shared init = init span minus keyword-separable wall: 0.5 - 0.3.
	if kw1.SharedInitMS < 0.19 || kw1.SharedInitMS > 0.21 {
		t.Fatalf("kw1 shared init %v", kw1.SharedInitMS)
	}
}

func TestAttributionEviction(t *testing.T) {
	a := NewAttribution(AttributionConfig{MaxKeywords: 4})
	// One hot recurring term, then a stream of one-off cold probes.
	for i := 0; i < 20; i++ {
		a.Observe(execEntry([]string{"hot"}, 0.2, []obs.KeywordCost{{Term: "hot", Runs: 1, WallMS: 0.2}}))
		cold := "cold" + strconv.Itoa(i)
		a.Observe(execEntry([]string{cold}, 0.01, []obs.KeywordCost{{Term: cold, Runs: 1, WallMS: 0.001}}))
	}
	snap := a.SnapshotTop(0)
	if snap.TrackedKeywords != 4 {
		t.Fatalf("tracked %d, want 4", snap.TrackedKeywords)
	}
	if snap.EvictedKeywords == 0 {
		t.Fatal("expected evictions")
	}
	if snap.HotKeywords[0].Term != "hot" || snap.HotKeywords[0].Queries != 20 {
		t.Fatalf("hot term evicted: %+v", snap.HotKeywords)
	}
}

func TestTrackerMetricsLintClean(t *testing.T) {
	tr := NewTracker(AttributionConfig{}, nil)
	tr.Observe(execEntry([]string{"carl", "hector"}, 1.0, []obs.KeywordCost{
		{Term: "carl", Runs: 1, Visits: 10, WallMS: 0.4},
		{Term: "hector", Runs: 1, Visits: 4, WallMS: 0.2},
	}))
	reg := obs.NewRegistry()
	tr.Register(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := obs.LintPrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		`commdb_keyword_queries_total{term="carl"} 1`,
		`commdb_keyword_init_visits_total{term="hector"} 4`,
		`commdb_workload_observed_total 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, text)
		}
	}
}
