module commdb

go 1.22
