package commdb

import (
	"bytes"
	"reflect"
	"testing"
)

// collectFull drains an enumeration into fully materialized
// communities.
func collectFull(t *testing.T, s *Searcher, q Query) []*Community {
	t.Helper()
	it, err := s.All(q)
	if err != nil {
		t.Fatal(err)
	}
	var out []*Community
	for {
		c, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, c)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// sameCommunities asserts two enumerations are indistinguishable:
// same order, costs, cores, centers, members and induced edges.
func sameCommunities(t *testing.T, got, want []*Community, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d communities, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Cost != w.Cost ||
			!reflect.DeepEqual(g.Core, w.Core) ||
			!reflect.DeepEqual(g.Cnodes, w.Cnodes) ||
			!reflect.DeepEqual(g.Nodes, w.Nodes) ||
			!reflect.DeepEqual(g.Edges, w.Edges) {
			t.Fatalf("%s: community %d differs:\n got %+v\nwant %+v", label, i, g, w)
		}
	}
}

// TestKeywordArtifactsByteIdentity: a searcher serving engine init from
// warmed keyword artifacts must produce the byte-identical community
// sequence as cold execution — and so must one that loaded the same
// artifacts from disk.
func TestKeywordArtifactsByteIdentity(t *testing.T) {
	g, _ := PaperExampleGraph()
	q := Query{Keywords: []string{"a", "b", "c"}, Rmax: 8}
	cold := collectFull(t, NewSearcher(g), q)
	if len(cold) == 0 {
		t.Fatal("paper query returned nothing")
	}

	warm, err := Open(g, WithKeywordArtifactStore(8))
	if err != nil {
		t.Fatal(err)
	}
	if n := warm.WarmKeywords([]string{"a", "b", "c"}); n != 3 {
		t.Fatalf("warmed %d keywords, want 3", n)
	}
	sameCommunities(t, collectFull(t, warm, q), cold, "warmed store")
	if ka := warm.KeywordArtifacts(); ka.Hits != 3 || ka.Misses != 0 {
		t.Fatalf("artifact hits/misses = %d/%d, want 3/0", ka.Hits, ka.Misses)
	}

	// Round-trip the store through its serialized form.
	var buf bytes.Buffer
	if err := warm.WriteKeywordArtifacts(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Open(g, WithKeywordArtifacts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	sameCommunities(t, collectFull(t, loaded, q), cold, "loaded store")

	// Smaller query radii are served from the same artifacts by
	// truncation and must stay byte-identical too.
	for _, rmax := range []float64{6, 4} {
		sub := Query{Keywords: []string{"a", "b", "c"}, Rmax: rmax}
		sameCommunities(t, collectFull(t, loaded, sub), collectFull(t, NewSearcher(g), sub), "truncated radius")
	}
}

// TestKeywordArtifactsFallback: a query radius beyond the store's falls
// back to live execution — identical results, counted as misses.
func TestKeywordArtifactsFallback(t *testing.T) {
	g, _ := PaperExampleGraph()
	q := Query{Keywords: []string{"a", "b", "c"}, Rmax: 8}
	cold := collectFull(t, NewSearcher(g), q)

	warm, err := Open(g, WithKeywordArtifactStore(4))
	if err != nil {
		t.Fatal(err)
	}
	warm.WarmKeywords([]string{"a", "b", "c"})
	sameCommunities(t, collectFull(t, warm, q), cold, "beyond store radius")
	if ka := warm.KeywordArtifacts(); ka.Hits != 0 || ka.Misses == 0 {
		t.Fatalf("artifact hits/misses = %d/%d, want 0/>0", ka.Hits, ka.Misses)
	}

	// Work-shape limits disable artifact serving: the budget must trip
	// at the same points as cold execution, so the store steps aside.
	lim := Query{Keywords: []string{"a", "b", "c"}, Rmax: 4, Limits: Limits{MaxRelaxations: 1 << 30}}
	sameCommunities(t, collectFull(t, warm, lim), collectFull(t, NewSearcher(g), lim), "limited query")
	if ka := warm.KeywordArtifacts(); ka.Hits != 0 {
		t.Fatalf("artifact hits = %d, want 0 (limits must bypass the store)", ka.Hits)
	}
}

// TestWithRankerEndpoints: the ranker seam reproduces both built-in
// cost functions exactly at its endpoints — WithRanker(SumRanker) and
// BalancedRanker(1) match the default, BalancedRanker(0) and MaxRanker
// match CostMaxDistance — so the default behavior is provably
// unchanged by the API redesign.
func TestWithRankerEndpoints(t *testing.T) {
	g, _ := PaperExampleGraph()
	qSum := Query{Keywords: []string{"a", "b", "c"}, Rmax: 8}
	qMax := Query{Keywords: []string{"a", "b", "c"}, Rmax: 8, Cost: CostMaxDistance}
	wantSum := collectFull(t, NewSearcher(g), qSum)
	wantMax := collectFull(t, NewSearcher(g), qMax)

	balanced1, err := BalancedRanker(1)
	if err != nil {
		t.Fatal(err)
	}
	balanced0, err := BalancedRanker(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		r    Ranker
		q    Query
		want []*Community
	}{
		{"sum ranker", SumRanker(), qSum, wantSum},
		{"balanced alpha=1", balanced1, qSum, wantSum},
		{"max ranker", MaxRanker(), qSum, wantMax},
		{"balanced alpha=0", balanced0, qSum, wantMax},
	} {
		s, err := Open(g, WithRanker(tc.r))
		if err != nil {
			t.Fatal(err)
		}
		got := collectFull(t, s, tc.q)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: %d communities, want %d", tc.name, len(got), len(tc.want))
		}
		for i := range got {
			if got[i].Cost != tc.want[i].Cost || !reflect.DeepEqual(got[i].Core, tc.want[i].Core) {
				t.Fatalf("%s: community %d is %v/%v, want %v/%v",
					tc.name, i, got[i].Core, got[i].Cost, tc.want[i].Core, tc.want[i].Cost)
			}
		}
	}
}

// TestBalancedRankerOrder: at an interior alpha the blended aggregate
// still satisfies the monotone contract observably — top-k emission
// order is non-decreasing in cost, and every cost sits between the
// blend's components' bounds.
func TestBalancedRankerOrder(t *testing.T) {
	if _, err := BalancedRanker(-0.1); err == nil {
		t.Fatal("BalancedRanker(-0.1) accepted")
	}
	if _, err := BalancedRanker(1.5); err == nil {
		t.Fatal("BalancedRanker(1.5) accepted")
	}
	r, err := BalancedRanker(0.5)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := PaperExampleGraph()
	s, err := Open(g, WithRanker(r))
	if err != nil {
		t.Fatal(err)
	}
	it, err := s.TopK(Query{Keywords: []string{"a", "b", "c"}, Rmax: 8})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	n := 0
	for {
		c, ok := it.Next()
		if !ok {
			break
		}
		if c.Cost < prev {
			t.Fatalf("top-k emission order violated: %v after %v", c.Cost, prev)
		}
		prev = c.Cost
		n++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("balanced ranker found nothing on the paper example")
	}
}

// TestRankerWithArtifacts: a custom ranker and the artifact store
// compose — warmed execution stays byte-identical under a non-default
// aggregate.
func TestRankerWithArtifacts(t *testing.T) {
	g, _ := PaperExampleGraph()
	r, err := BalancedRanker(0.5)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Keywords: []string{"a", "b", "c"}, Rmax: 8}
	coldS, err := Open(g, WithRanker(r))
	if err != nil {
		t.Fatal(err)
	}
	warmS, err := Open(g, WithRanker(r), WithKeywordArtifactStore(8))
	if err != nil {
		t.Fatal(err)
	}
	warmS.WarmKeywords([]string{"a", "b", "c"})
	sameCommunities(t, collectFull(t, warmS, q), collectFull(t, coldS, q), "ranker+artifacts")
	if ka := warmS.KeywordArtifacts(); ka.Hits == 0 {
		t.Fatal("artifacts did not serve under a custom ranker")
	}
}
